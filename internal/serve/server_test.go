package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"edgellm/internal/fault"
	"edgellm/internal/govern"
	"edgellm/internal/nn"
)

// newTestServer stands up a Server over a fresh batch decoder plus an
// httptest front end. Cleanup drains the server (asserting the arena
// empties) before tearing the HTTP listener down.
func newTestServer(t *testing.T, m *nn.Model, slots int, cfg ServerConfig) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	dec := nn.NewBatchDecoder(m, slots, nil)
	srv := NewServer(dec, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		if err := srv.Drain(); err != nil {
			t.Errorf("drain: %v", err)
		}
		ts.Close()
		dec.Close()
	})
	return srv, ts
}

func postGenerate(t *testing.T, ts *httptest.Server, req generateRequest, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/generate", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, body.Bytes()
}

// wantError asserts the uniform non-2xx shape: one JSON object with error
// and code always set.
func wantError(t *testing.T, resp *http.Response, body []byte, status int, code string) errorResponse {
	t.Helper()
	if resp.StatusCode != status {
		t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, status, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("non-2xx body is not one JSON object: %v (%s)", err, body)
	}
	if er.Code != code {
		t.Fatalf("code = %q, want %q (error %q)", er.Code, code, er.Error)
	}
	if er.Error == "" {
		t.Fatalf("error message empty in %s", body)
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%d response missing Retry-After", status)
		}
	}
	return er
}

func TestServerGenerateMatchesSolo(t *testing.T) {
	m := testModel(400)
	_, ts := newTestServer(t, m, 2, ServerConfig{MaxQueue: 8})

	reqs := []generateRequest{
		{ID: "g1", Prompt: []int{1, 2, 3}, MaxTokens: 5},
		{ID: "g2", Prompt: []int{7}, MaxTokens: 6, Temperature: 0.8, TopK: 5, Seed: 9},
		{ID: "g3", Prompt: []int{30, 0, 4}, MaxTokens: 4, Temperature: 1.1, Seed: 3},
	}
	var wg sync.WaitGroup
	results := make([]generateResponse, len(reqs))
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req generateRequest) {
			defer wg.Done()
			resp, body := postGenerate(t, ts, req, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%s: status %d: %s", req.ID, resp.StatusCode, body)
				return
			}
			if err := json.Unmarshal(body, &results[i]); err != nil {
				t.Errorf("%s: %v", req.ID, err)
			}
		}(i, req)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, req := range reqs {
		want := soloGenerate(t, m, req.Prompt, nn.SampleConfig{
			Temperature: req.Temperature, TopK: req.TopK, MaxTokens: req.MaxTokens, Seed: req.Seed,
		})
		tokensEqual(t, req.ID, results[i].Tokens, want)
		if !results[i].Done {
			t.Fatalf("%s: Done not set", req.ID)
		}
	}
}

func TestServerStreamingNDJSON(t *testing.T) {
	m := testModel(401)
	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 4})

	req := generateRequest{ID: "s1", Prompt: []int{5, 6}, MaxTokens: 6, Stream: true}
	blob, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var chunks []int
	var final generateResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"token":`)) { // chunk lines; the final line has "tokens":
			var chunk streamChunk
			if err := json.Unmarshal(line, &chunk); err != nil {
				t.Fatalf("bad chunk line %s: %v", line, err)
			}
			chunks = append(chunks, chunk.Token)
			continue
		}
		if err := json.Unmarshal(line, &final); err != nil {
			t.Fatalf("bad NDJSON line %s: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := soloGenerate(t, m, req.Prompt, nn.SampleConfig{MaxTokens: req.MaxTokens})
	tokensEqual(t, "final", final.Tokens, want)
	tokensEqual(t, "chunks", chunks, want[len(req.Prompt):])
	if !final.Done {
		t.Fatal("final line missing done")
	}
}

func TestServerBadRequests(t *testing.T) {
	m := testModel(402)
	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 2})

	t.Run("method", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/generate")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		wantError(t, resp, body.Bytes(), http.StatusMethodNotAllowed, "method_not_allowed")
	})
	t.Run("bad-json", func(t *testing.T) {
		resp, err := ts.Client().Post(ts.URL+"/v1/generate", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body bytes.Buffer
		body.ReadFrom(resp.Body)
		wantError(t, resp, body.Bytes(), http.StatusBadRequest, "bad_request")
	})
	cases := []struct {
		name string
		req  generateRequest
		hdr  map[string]string
	}{
		{"empty-prompt", generateRequest{ID: "b1", MaxTokens: 4}, nil},
		{"overlong", generateRequest{ID: "b2", Prompt: []int{1, 2}, MaxTokens: 1000}, nil},
		{"bad-temperature", generateRequest{ID: "b3", Prompt: []int{1}, MaxTokens: 2, Temperature: -1}, nil},
		{"zero-max-tokens", generateRequest{ID: "b4", Prompt: []int{1}}, nil},
		{"bad-deadline", generateRequest{ID: "b5", Prompt: []int{1}, MaxTokens: 2},
			map[string]string{"X-Edgellm-Deadline-Ms": "soon"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postGenerate(t, ts, tc.req, tc.hdr)
			wantError(t, resp, body, http.StatusBadRequest, "bad_request")
		})
	}
}

// writeAdapterArtifact saves a deterministic test adapter under dir/name.
func writeAdapterArtifact(t *testing.T, dir, name string, seed int64, cfg nn.Config) {
	t.Helper()
	a := makeTestAdapter(t, name, seed, cfg)
	if err := a.SaveFile(filepath.Join(dir, name)); err != nil {
		t.Fatal(err)
	}
}

func TestServerAdapterFlow(t *testing.T) {
	m := testModel(403)
	dir := t.TempDir()
	writeAdapterArtifact(t, dir, "tenant-a", 100, m.Cfg)
	writeAdapterArtifact(t, dir, "tenant-bad", 200, m.Cfg)

	// Corrupt tenant-bad's artifact: any flipped bit must surface as a clean
	// 422, never a panic (the CRC footer catches every single-bit flip).
	path := filepath.Join(dir, "tenant-bad")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fault.NewCorrupter(7).FlipRandomBit(blob)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, m, 1, ServerConfig{
		MaxQueue: 4,
		Registry: NewRegistry(dir, 2),
	})

	// Solo reference under the adapter, computed on a private decoder before
	// any server traffic so the shared model is never double-patched.
	prompt := []int{3, 4}
	scfg := nn.SampleConfig{MaxTokens: 4}
	adp := makeTestAdapter(t, "tenant-a", 100, m.Cfg)
	solo := nn.NewDecoder(m)
	if err := solo.SetAdapter(adp); err != nil {
		t.Fatal(err)
	}
	want, err := solo.Generate(prompt, scfg)
	if err != nil {
		t.Fatal(err)
	}
	solo.Close()

	resp, body := postGenerate(t, ts, generateRequest{
		ID: "a1", Adapter: "tenant-a", Prompt: prompt, MaxTokens: scfg.MaxTokens,
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("adapter generate: %d %s", resp.StatusCode, body)
	}
	var gr generateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	tokensEqual(t, "adapter tokens", gr.Tokens, want)

	t.Run("missing-404", func(t *testing.T) {
		resp, body := postGenerate(t, ts, generateRequest{
			ID: "a2", Adapter: "nope", Prompt: []int{1}, MaxTokens: 2,
		}, nil)
		wantError(t, resp, body, http.StatusNotFound, "adapter_not_found")
	})
	t.Run("corrupt-422", func(t *testing.T) {
		resp, body := postGenerate(t, ts, generateRequest{
			ID: "a3", Adapter: "tenant-bad", Prompt: []int{1}, MaxTokens: 2,
		}, nil)
		wantError(t, resp, body, http.StatusUnprocessableEntity, "adapter_corrupt")
	})
	t.Run("adapters-endpoint", func(t *testing.T) {
		resp, err := ts.Client().Get(ts.URL + "/v1/adapters")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var listing struct {
			Resident  []string `json:"resident"`
			Available []string `json:"available"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Resident) != 1 || listing.Resident[0] != "tenant-a" {
			t.Fatalf("resident = %v, want [tenant-a]", listing.Resident)
		}
		if len(listing.Available) != 2 {
			t.Fatalf("available = %v, want both artifacts", listing.Available)
		}
	})
}

func TestRegistryLRUAndBusy(t *testing.T) {
	m := testModel(404)
	dir := t.TempDir()
	writeAdapterArtifact(t, dir, "a", 1, m.Cfg)
	writeAdapterArtifact(t, dir, "b", 2, m.Cfg)
	reg := NewRegistry(dir, 1)

	if _, err := reg.Acquire("a"); err != nil {
		t.Fatal(err)
	}
	// Bound reached with "a" pinned: loading "b" must shed, not grow.
	if _, err := reg.Acquire("b"); !errors.Is(err, ErrRegistryBusy) {
		t.Fatalf("acquire b while a pinned: %v, want ErrRegistryBusy", err)
	}
	reg.Release("a")
	// Unpinned "a" is now the LRU victim: "b" evicts it.
	if _, err := reg.Acquire("b"); err != nil {
		t.Fatal(err)
	}
	if res := reg.Resident(); len(res) != 1 || res[0] != "b" {
		t.Fatalf("resident = %v, want [b]", res)
	}
	reg.Release("b")

	if _, err := reg.Acquire("../escape"); !errors.Is(err, ErrAdapterNotFound) {
		t.Fatalf("path-escaping name: %v, want ErrAdapterNotFound", err)
	}
	if _, err := reg.Acquire("ghost"); !errors.Is(err, ErrAdapterNotFound) {
		t.Fatalf("missing artifact: %v, want ErrAdapterNotFound", err)
	}
}

// holdGenerate posts a stall-injected request on its own goroutine and
// returns a release function (cancels the client context) plus a channel
// yielding the final status code. The injected stall blocks the decode loop
// at the request's halfway token, deterministically pinning the stream
// in-flight until released or killed.
func holdGenerate(t *testing.T, ts *httptest.Server, req generateRequest) (release func(), done chan int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done = make(chan int, 1)
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		hreq, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/generate", bytes.NewReader(blob))
		resp, err := ts.Client().Do(hreq)
		if err != nil {
			done <- -1
			return
		}
		defer resp.Body.Close()
		var sink bytes.Buffer
		sink.ReadFrom(resp.Body)
		done <- resp.StatusCode
	}()
	return cancel, done
}

// waitStatusz polls /statusz until pred accepts the decoded status or the
// deadline passes.
func waitStatusz(t *testing.T, ts *httptest.Server, pred func(map[string]any) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		var status map[string]any
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if pred(status) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("statusz never reached the expected state")
}

func TestServerOverloadSheds429(t *testing.T) {
	m := testModel(405)
	inj, err := fault.ParseSpec("stall=HOLD")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 1, Injector: inj})

	// HOLD stalls the lone decode slot; Q1 fills the one queue place.
	releaseHold, holdDone := holdGenerate(t, ts, generateRequest{ID: "HOLD", Prompt: []int{1, 2}, MaxTokens: 6})
	waitStatusz(t, ts, func(s map[string]any) bool { return s["active_requests"].(float64) >= 1 })
	releaseQ1, q1Done := holdGenerate(t, ts, generateRequest{ID: "Q1", Prompt: []int{3}, MaxTokens: 2})
	defer releaseQ1()
	waitStatusz(t, ts, func(s map[string]any) bool { return s["active_requests"].(float64) >= 2 })

	// The building is full: slots(1) + queue(1) both occupied.
	resp, body := postGenerate(t, ts, generateRequest{ID: "shed", Prompt: []int{4}, MaxTokens: 2}, nil)
	wantError(t, resp, body, http.StatusTooManyRequests, "overloaded")

	// Releasing HOLD (client disconnect) unblocks the decode loop; Q1 then
	// decodes normally and must match a solo run exactly.
	releaseHold()
	<-holdDone
	if code := <-q1Done; code != http.StatusOK {
		t.Fatalf("queued request finished %d, want 200", code)
	}
}

func TestServerTenantCap429(t *testing.T) {
	m := testModel(406)
	inj, err := fault.ParseSpec("stall=HOLD")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m, 2, ServerConfig{MaxQueue: 4, TenantSlots: 1, Injector: inj})

	releaseHold, holdDone := holdGenerate(t, ts, generateRequest{
		ID: "HOLD", Tenant: "t1", Prompt: []int{1, 2}, MaxTokens: 6,
	})
	waitStatusz(t, ts, func(s map[string]any) bool { return s["active_requests"].(float64) >= 1 })

	resp, body := postGenerate(t, ts, generateRequest{
		ID: "t1-again", Tenant: "t1", Prompt: []int{3}, MaxTokens: 2,
	}, nil)
	wantError(t, resp, body, http.StatusTooManyRequests, "tenant_limit")

	releaseHold()
	<-holdDone
	// The cap is per-tenant and released with the stream: t1 admits again.
	waitStatusz(t, ts, func(s map[string]any) bool { return s["active_requests"].(float64) == 0 })
	resp, body = postGenerate(t, ts, generateRequest{
		ID: "t1-later", Tenant: "t1", Prompt: []int{3}, MaxTokens: 2,
	}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d %s", resp.StatusCode, body)
	}
}

func TestServerDeadlineExceeded504(t *testing.T) {
	m := testModel(407)
	inj, err := fault.ParseSpec("stall=SLOW")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 2, Injector: inj})

	// SLOW stalls mid-generation; the 80ms header deadline must kill it with
	// a typed 504 and reclaim its slot.
	resp, body := postGenerate(t, ts, generateRequest{ID: "SLOW", Prompt: []int{1, 2}, MaxTokens: 6},
		map[string]string{"X-Edgellm-Deadline-Ms": "80"})
	wantError(t, resp, body, http.StatusGatewayTimeout, "deadline_exceeded")

	// The slot is free again: a healthy request decodes solo-identically.
	want := soloGenerate(t, m, []int{5}, nn.SampleConfig{MaxTokens: 3})
	resp, body = postGenerate(t, ts, generateRequest{ID: "ok", Prompt: []int{5}, MaxTokens: 3}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after deadline kill: %d %s", resp.StatusCode, body)
	}
	var gr generateResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	tokensEqual(t, "post-deadline", gr.Tokens, want)
}

func TestServerStallWatchdog504(t *testing.T) {
	m := testModel(408)
	inj, err := fault.ParseSpec("stall=W1")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 2, StallTimeout: 80 * time.Millisecond, Injector: inj})

	resp, body := postGenerate(t, ts, generateRequest{ID: "W1", Prompt: []int{1, 2}, MaxTokens: 6}, nil)
	wantError(t, resp, body, http.StatusGatewayTimeout, "stalled")
	if !strings.Contains(string(body), "stall") {
		t.Fatalf("stall error lost its diagnosis: %s", body)
	}
}

func TestServerMemoryAdmission(t *testing.T) {
	m := testModel(409)
	cfg := m.Cfg
	// Budget fits exactly one 8-token stream's KV need.
	oneStream := govern.ServeKVBytes(cfg.Layers, cfg.Dim, 8)
	inj, err := fault.ParseSpec("stall=HOLD")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m, 2, ServerConfig{
		MaxQueue: 4,
		Budget:   govern.Budget{MemoryBytes: oneStream},
		Injector: inj,
	})

	t.Run("unfittable-413", func(t *testing.T) {
		resp, body := postGenerate(t, ts, generateRequest{
			ID: "huge", Prompt: []int{1, 2, 3, 4, 5}, MaxTokens: 10,
		}, nil)
		wantError(t, resp, body, http.StatusRequestEntityTooLarge, "unfittable")
	})
	t.Run("transient-429", func(t *testing.T) {
		releaseHold, holdDone := holdGenerate(t, ts, generateRequest{
			ID: "HOLD", Prompt: []int{1, 2}, MaxTokens: 6, // 8 tokens: the whole budget
		})
		defer func() { releaseHold(); <-holdDone }()
		waitStatusz(t, ts, func(s map[string]any) bool { return s["active_requests"].(float64) >= 1 })
		resp, body := postGenerate(t, ts, generateRequest{
			ID: "evicted", Prompt: []int{1}, MaxTokens: 3,
		}, nil)
		wantError(t, resp, body, http.StatusTooManyRequests, "memory")
	})
	t.Run("fits-after-release", func(t *testing.T) {
		waitStatusz(t, ts, func(s map[string]any) bool { return s["reserved_kv_bytes"].(float64) == 0 })
		resp, body := postGenerate(t, ts, generateRequest{
			ID: "fits", Prompt: []int{1}, MaxTokens: 3,
		}, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fitting request: %d %s", resp.StatusCode, body)
		}
	})
}

func TestServerDrainShedsAndEmptiesArena(t *testing.T) {
	m := testModel(410)
	dec := nn.NewBatchDecoder(m, 2, nil)
	defer dec.Close()
	srv := NewServer(dec, ServerConfig{MaxQueue: 8, DrainTimeout: 500 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A burst of healthy requests races the drain: each must either finish
	// with solo-identical tokens or be shed/cancelled with a well-formed
	// typed error — and the arena must be empty afterwards either way.
	const n = 8
	type outcome struct {
		status int
		body   []byte
		req    generateRequest
	}
	outcomes := make(chan outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		req := generateRequest{ID: fmt.Sprintf("d%d", i), Prompt: []int{i%7 + 1, 2}, MaxTokens: 4}
		wg.Add(1)
		go func(req generateRequest) {
			defer wg.Done()
			blob, _ := json.Marshal(req)
			resp, err := ts.Client().Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(blob))
			if err != nil {
				outcomes <- outcome{status: -1, req: req}
				return
			}
			defer resp.Body.Close()
			var body bytes.Buffer
			body.ReadFrom(resp.Body)
			outcomes <- outcome{status: resp.StatusCode, body: body.Bytes(), req: req}
		}(req)
	}
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(outcomes)
	for oc := range outcomes {
		switch oc.status {
		case http.StatusOK:
			var gr generateResponse
			if err := json.Unmarshal(oc.body, &gr); err != nil {
				t.Fatalf("%s: %v", oc.req.ID, err)
			}
			want := soloGenerate(t, m, oc.req.Prompt, nn.SampleConfig{MaxTokens: oc.req.MaxTokens})
			tokensEqual(t, oc.req.ID, gr.Tokens, want)
		case -1:
			t.Fatalf("%s: transport error during drain", oc.req.ID)
		default:
			var er errorResponse
			if err := json.Unmarshal(oc.body, &er); err != nil || er.Code == "" {
				t.Fatalf("%s: malformed drain rejection %s", oc.req.ID, oc.body)
			}
		}
	}
	if n := dec.ArenaActiveBytes(); n != 0 {
		t.Fatalf("arena holds %d bytes after drain", n)
	}

	// Post-drain: healthz refuses with 503 + Retry-After and the distinct
	// {"status":"draining"} body, so black-box probes can tell a deliberate
	// drain from overload shedding without parsing error codes.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz missing Retry-After")
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body.Bytes(), &health); err != nil || health.Status != "draining" {
		t.Fatalf("draining healthz body = %q, want {\"status\":\"draining\"} (err %v)", body.String(), err)
	}

	blob, _ := json.Marshal(generateRequest{ID: "late", Prompt: []int{1}, MaxTokens: 2})
	post, err := ts.Client().Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	body.Reset()
	body.ReadFrom(post.Body)
	post.Body.Close()
	wantError(t, post, body.Bytes(), http.StatusServiceUnavailable, "draining")

	if err := srv.Drain(); err != nil {
		t.Fatalf("second drain must be a no-op: %v", err)
	}
}

func TestServerInjectedAdmissionFail(t *testing.T) {
	m := testModel(411)
	inj, err := fault.ParseSpec("fail=R9")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 2, Injector: inj})

	resp, body := postGenerate(t, ts, generateRequest{ID: "R9", Prompt: []int{1}, MaxTokens: 2}, nil)
	wantError(t, resp, body, http.StatusServiceUnavailable, "injected_fault")

	// Other request IDs are untouched by the injection.
	resp, body = postGenerate(t, ts, generateRequest{ID: "ok", Prompt: []int{1}, MaxTokens: 2}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("uninjected request: %d %s", resp.StatusCode, body)
	}
}

func TestServerStatusz(t *testing.T) {
	m := testModel(412)
	_, ts := newTestServer(t, m, 3, ServerConfig{MaxQueue: 2})

	resp, err := ts.Client().Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status["draining"].(bool) {
		t.Fatal("fresh server reports draining")
	}
	if got := status["slots"].(float64); got != 3 {
		t.Fatalf("slots = %v, want 3", got)
	}
	for _, key := range []string{"active_requests", "queue_depth", "reserved_kv_bytes", "tenants"} {
		if _, ok := status[key]; !ok {
			t.Fatalf("statusz missing %q: %v", key, status)
		}
	}
}
