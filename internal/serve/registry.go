package serve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"edgellm/internal/nn"
	"edgellm/internal/obsv"
)

// ErrAdapterNotFound is returned by Registry.Acquire for a tenant adapter
// with no artifact on disk (HTTP 404 at the front end).
var ErrAdapterNotFound = errors.New("serve: adapter not found")

// ErrRegistryBusy is returned when the resident-adapter bound is reached
// and every resident adapter is pinned by in-flight streams — a transient
// condition (HTTP 429): retry after streams finish.
var ErrRegistryBusy = errors.New("serve: all resident adapters are in use")

// CorruptAdapterError is returned when an artifact exists but fails
// integrity checks or cannot be applied to this model — a permanent,
// client-visible condition (HTTP 422), never a panic.
type CorruptAdapterError struct {
	Name string
	Err  error
}

// Error implements error.
func (e *CorruptAdapterError) Error() string {
	return fmt.Sprintf("serve: adapter %s unusable: %v", e.Name, e.Err)
}

// Unwrap exposes the underlying load error.
func (e *CorruptAdapterError) Unwrap() error { return e.Err }

// Registry hot-loads per-tenant adapter artifacts (nn.Adapter CRC format)
// from a directory and bounds how many stay resident. Acquire pins an
// adapter for the lifetime of one stream (refcount); Release unpins it.
// When loading a new adapter would exceed MaxResident, the least recently
// used unpinned adapter is evicted; if every resident adapter is pinned the
// acquire fails with ErrRegistryBusy instead of growing without bound.
type Registry struct {
	dir         string
	maxResident int

	mu      sync.Mutex
	entries map[string]*regEntry
	clock   int64 // logical LRU clock: bumped on every acquire
}

type regEntry struct {
	adapter *nn.Adapter
	refs    int
	lastUse int64
}

// NewRegistry returns a registry serving artifacts from dir, keeping at
// most maxResident adapters loaded (minimum 1).
func NewRegistry(dir string, maxResident int) *Registry {
	if maxResident < 1 {
		maxResident = 1
	}
	return &Registry{
		dir:         dir,
		maxResident: maxResident,
		entries:     make(map[string]*regEntry),
	}
}

// validName rejects adapter names that could escape the registry
// directory or collide with hidden files.
func validName(name string) bool {
	if name == "" || len(name) > 128 || strings.HasPrefix(name, ".") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '.' || r == '_' || r == '-':
		default:
			return false
		}
	}
	return true
}

// Acquire returns the named adapter pinned for one stream, loading and
// verifying its artifact on first use. Every return path is a typed error:
// ErrAdapterNotFound (no artifact), *CorruptAdapterError (artifact failed
// integrity or validation), ErrRegistryBusy (resident bound reached with
// everything pinned). Callers must Release exactly once per successful
// Acquire.
func (r *Registry) Acquire(name string) (*nn.Adapter, error) {
	if !validName(name) {
		return nil, fmt.Errorf("%w: invalid adapter name %q", ErrAdapterNotFound, name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	if e, ok := r.entries[name]; ok {
		e.refs++
		e.lastUse = r.clock
		return e.adapter, nil
	}
	path := filepath.Join(r.dir, name)
	if _, err := os.Stat(path); err != nil {
		// Before the residency check: a request for an artifact that does
		// not exist must 404, not evict anything or shed as busy.
		return nil, fmt.Errorf("%w: %s", ErrAdapterNotFound, name)
	}
	if err := r.evictForSpaceLocked(); err != nil {
		return nil, err
	}
	a, err := nn.LoadAdapterFile(path)
	if err != nil {
		obsv.Add("serve.adapter_load_errors", 1)
		return nil, &CorruptAdapterError{Name: name, Err: err}
	}
	if a.Name() != name {
		obsv.Add("serve.adapter_load_errors", 1)
		return nil, &CorruptAdapterError{Name: name, Err: fmt.Errorf("artifact is named %q", a.Name())}
	}
	obsv.Add("serve.adapter_loads", 1)
	obsv.SetGauge("serve.adapter_resident", float64(len(r.entries)+1))
	r.entries[name] = &regEntry{adapter: a, refs: 1, lastUse: r.clock}
	return a, nil
}

// evictForSpaceLocked makes room for one more resident adapter, evicting
// the least recently used unpinned entry when at the bound.
func (r *Registry) evictForSpaceLocked() error {
	if len(r.entries) < r.maxResident {
		return nil
	}
	victim := ""
	var oldest int64
	for name, e := range r.entries {
		if e.refs > 0 {
			continue
		}
		if victim == "" || e.lastUse < oldest {
			victim, oldest = name, e.lastUse
		}
	}
	if victim == "" {
		return ErrRegistryBusy
	}
	delete(r.entries, victim)
	obsv.Add("serve.adapter_evictions", 1)
	obsv.SetGauge("serve.adapter_resident", float64(len(r.entries)))
	return nil
}

// Release unpins one Acquire. The adapter stays resident (warm) until LRU
// eviction needs its slot.
func (r *Registry) Release(name string) {
	r.mu.Lock()
	if e, ok := r.entries[name]; ok && e.refs > 0 {
		e.refs--
	}
	r.mu.Unlock()
}

// Resident returns the names of currently loaded adapters, sorted.
func (r *Registry) Resident() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.entries))
	for name := range r.entries {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// List returns every artifact name available on disk, sorted — resident or
// not. Unreadable directories yield an empty list (the registry may serve
// base-model-only deployments with no adapter dir at all).
func (r *Registry) List() []string {
	ents, err := os.ReadDir(r.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, ent := range ents {
		if !ent.IsDir() && validName(ent.Name()) {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	return names
}
