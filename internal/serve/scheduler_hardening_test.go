package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgellm/internal/nn"
	"edgellm/internal/tensor"
)

func greedyReq(id string, prompt []int, maxTokens int) Request {
	return Request{ID: id, Prompt: prompt, Cfg: nn.SampleConfig{MaxTokens: maxTokens}}
}

// TestSubmitCloseRace hammers Submit from many goroutines while Close races
// them: every Submit must either enqueue successfully or fail with the
// typed ErrClosed — never panic — and every accepted stream must finish
// once the serve loop is stopped, leaving the arena drained.
func TestSubmitCloseRace(t *testing.T) {
	m := testModel(11)
	for round := 0; round < 8; round++ {
		dec := nn.NewBatchDecoder(m, 2, nil)
		sched := New(dec)
		ctx, cancel := context.WithCancel(context.Background())
		serveDone := make(chan error, 1)
		go func() { serveDone <- sched.Serve(ctx) }()

		const submitters = 8
		var wg sync.WaitGroup
		var accepted sync.Map
		var rejected atomic.Int64
		start := make(chan struct{})
		for g := 0; g < submitters; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i := 0; i < 20; i++ {
					st, err := sched.Submit(greedyReq(fmt.Sprintf("g%d-%d", g, i), []int{1, 2}, 2))
					switch {
					case err == nil:
						accepted.Store(st, true)
					case errors.Is(err, ErrClosed):
						rejected.Add(1)
					default:
						t.Errorf("submit: unexpected error %v", err)
						return
					}
				}
			}(g)
		}
		close(start)
		sched.Close() // races the submitters
		wg.Wait()
		cancel() // finish anything still queued/active
		<-serveDone

		accepted.Range(func(k, _ any) bool {
			st := k.(*Stream)
			select {
			case <-st.Done():
			case <-time.After(5 * time.Second):
				t.Fatal("accepted stream never finished after Serve stopped")
			}
			return true
		})
		if dec.ArenaActiveBytes() != 0 {
			t.Fatalf("round %d: arena holds %d bytes after shutdown", round, dec.ArenaActiveBytes())
		}
		dec.Close()
	}
}

// TestSubmitAfterCloseTyped pins the satellite contract: Submit after Close
// returns ErrClosed specifically, not just any error.
func TestSubmitAfterCloseTyped(t *testing.T) {
	dec := nn.NewBatchDecoder(testModel(12), 1, nil)
	defer dec.Close()
	sched := New(dec)
	sched.Close()
	_, err := sched.Submit(greedyReq("late", []int{1}, 1))
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestCancelIdempotent pins Stream.Cancel semantics: repeated cancels are
// no-ops, cancel after completion is harmless, and the first CancelCause
// wins.
func TestCancelIdempotent(t *testing.T) {
	m := testModel(13)
	dec := nn.NewBatchDecoder(m, 1, nil)
	defer dec.Close()
	sched := New(dec)

	st, err := sched.Submit(greedyReq("done-then-cancel", []int{1, 2}, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := st.Result()
	if res.Err != nil {
		t.Fatalf("stream failed: %v", res.Err)
	}
	// Cancel after completion: harmless no-ops, result unchanged.
	for i := 0; i < 3; i++ {
		st.Cancel()
		st.CancelCause(errors.New("too late"))
	}
	after := st.Result()
	if after.Err != nil || len(after.Tokens) != len(res.Tokens) {
		t.Fatalf("cancel after completion changed result: %+v vs %+v", after, res)
	}

	// First cause wins across repeated cancels before the run.
	st2, err := sched.Submit(greedyReq("first-cause-wins", []int{1, 2}, 3))
	if err != nil {
		t.Fatal(err)
	}
	first := errors.New("first cause")
	st2.CancelCause(first)
	st2.Cancel()
	st2.CancelCause(errors.New("second cause"))
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := st2.Result().Err; !errors.Is(got, first) {
		t.Fatalf("cancelled stream error = %v, want first cause", got)
	}
	if dec.ArenaActiveBytes() != 0 {
		t.Fatalf("arena holds %d bytes after cancelled stream", dec.ArenaActiveBytes())
	}
}

// TestCancelRace hammers Cancel/CancelCause from many goroutines against a
// running scheduler — no panics, every stream ends with one of the supplied
// causes, slots reclaimed.
func TestCancelRace(t *testing.T) {
	m := testModel(14)
	dec := nn.NewBatchDecoder(m, 2, nil)
	defer dec.Close()
	sched := New(dec)

	var streams []*Stream
	for i := 0; i < 6; i++ {
		st, err := sched.Submit(greedyReq(fmt.Sprintf("c%d", i), []int{1, 2, 3}, 8))
		if err != nil {
			t.Fatal(err)
		}
		streams = append(streams, st)
	}
	var wg sync.WaitGroup
	for _, st := range streams {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(st *Stream, g int) {
				defer wg.Done()
				st.CancelCause(fmt.Errorf("goroutine %d: %w", g, ErrCancelled))
			}(st, g)
		}
	}
	wg.Wait() // all cancels land before the run: every stream must be retired
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, st := range streams {
		if err := st.Result().Err; !errors.Is(err, ErrCancelled) {
			t.Fatalf("stream %s error = %v, want an ErrCancelled cause", st.ID(), err)
		}
	}
	if dec.ArenaActiveBytes() != 0 {
		t.Fatalf("arena holds %d bytes after cancellations", dec.ArenaActiveBytes())
	}
}

// TestStreamPanicContainment poisons one stream's token hook and requires:
// the poisoned stream fails with a typed StreamPanicError, its slot is
// released, and the co-batched stream finishes with tokens identical to a
// solo decode — the blast radius is exactly one stream.
func TestStreamPanicContainment(t *testing.T) {
	m := testModel(15)
	dec := nn.NewBatchDecoder(m, 2, nil)
	defer dec.Close()
	sched := New(dec)

	poison := Request{
		ID: "poisoned", Prompt: []int{3, 4}, Cfg: nn.SampleConfig{MaxTokens: 6},
		OnToken: func(st *Stream, tok int) {
			if st.Sampled() == 3 {
				panic("injected hook panic")
			}
		},
	}
	healthy := greedyReq("healthy", []int{5, 6, 7}, 6)

	stP, err := sched.Submit(poison)
	if err != nil {
		t.Fatal(err)
	}
	stH, err := sched.Submit(healthy)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	var pe *StreamPanicError
	if err := stP.Result().Err; !errors.As(err, &pe) {
		t.Fatalf("poisoned stream error = %v, want StreamPanicError", err)
	} else if pe.ID != "poisoned" {
		t.Fatalf("panic error names stream %q, want poisoned", pe.ID)
	}
	res := stH.Result()
	if res.Err != nil {
		t.Fatalf("healthy co-batched stream failed: %v", res.Err)
	}
	tokensEqual(t, "healthy", res.Tokens, soloGenerate(t, m, healthy.Prompt, healthy.Cfg))
	if dec.ArenaActiveBytes() != 0 {
		t.Fatalf("arena holds %d bytes after contained panic", dec.ArenaActiveBytes())
	}
}

// TestServeKeepAlive pins the keep-alive contract: Serve idles across
// bursts instead of returning, picks up late submissions, and exits only on
// context cancellation.
func TestServeKeepAlive(t *testing.T) {
	m := testModel(16)
	dec := nn.NewBatchDecoder(m, 2, nil)
	defer dec.Close()
	sched := New(dec)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- sched.Serve(ctx) }()

	for burst := 0; burst < 3; burst++ {
		req := greedyReq(fmt.Sprintf("burst%d", burst), []int{1, 2, 3}, 4)
		st, err := sched.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-st.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("burst %d stream never finished", burst)
		}
		res := st.Result()
		if res.Err != nil {
			t.Fatalf("burst %d failed: %v", burst, res.Err)
		}
		tokensEqual(t, req.ID, res.Tokens, soloGenerate(t, m, req.Prompt, req.Cfg))
		// Let the loop go idle between bursts.
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-serveDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("Serve returned %v, want context.Canceled", err)
	}
	if dec.ArenaActiveBytes() != 0 {
		t.Fatalf("arena holds %d bytes after Serve exit", dec.ArenaActiveBytes())
	}
}

// TestSchedulerAdapterGrouping mixes base-model streams with streams on two
// different adapters. Streams must never co-batch across adapters (the
// decoder can carry only one), the scheduler must swap at batch boundaries,
// and every stream's tokens must equal the solo decode under its own
// adapter.
func TestSchedulerAdapterGrouping(t *testing.T) {
	m := testModel(17)
	adpA := makeTestAdapter(t, "tenant-a", 100, m.Cfg)
	adpB := makeTestAdapter(t, "tenant-b", 200, m.Cfg)

	type job struct {
		req     Request
		adapter *nn.Adapter
	}
	jobs := []job{
		{greedyReq("base-1", []int{1, 2}, 5), nil},
		{greedyReq("a-1", []int{3, 4}, 4), adpA},
		{greedyReq("b-1", []int{5, 6}, 4), adpB},
		{greedyReq("a-2", []int{7, 8, 9}, 3), adpA},
		{greedyReq("base-2", []int{10}, 6), nil},
		{greedyReq("b-2", []int{11, 12}, 5), adpB},
	}

	// Solo references, computed before the batch run so the shared model is
	// never double-patched.
	want := make([][]int, len(jobs))
	{
		solo := nn.NewDecoder(m)
		for i, j := range jobs {
			if err := solo.SetAdapter(j.adapter); err != nil {
				t.Fatal(err)
			}
			out, err := solo.Generate(j.req.Prompt, j.req.Cfg)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = out
		}
		solo.Close() // restores base weights
	}

	dec := nn.NewBatchDecoder(m, 2, nil)
	defer dec.Close()
	sched := New(dec)
	streams := make([]*Stream, len(jobs))
	for i, j := range jobs {
		req := j.req
		req.Adapter = j.adapter
		st, err := sched.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
	}
	if err := sched.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, st := range streams {
		res := st.Result()
		if res.Err != nil {
			t.Fatalf("stream %s failed: %v", st.ID(), res.Err)
		}
		tokensEqual(t, st.ID(), res.Tokens, want[i])
	}
	if dec.ArenaActiveBytes() != 0 {
		t.Fatalf("arena holds %d bytes after adapter-grouped run", dec.ArenaActiveBytes())
	}
}

// makeTestAdapter builds a deterministic low-rank adapter touching an
// attention projection, an MLP linear, and the output head.
func makeTestAdapter(t *testing.T, name string, seed int64, cfg nn.Config) *nn.Adapter {
	t.Helper()
	g := tensor.NewRNG(seed)
	pairs := []nn.AdapterPair{
		{Target: "block0.wq", A: g.Normal(0, 0.1, cfg.Dim, 2), B: g.Normal(0, 0.1, 2, cfg.Dim)},
		{Target: "block1.down", A: g.Normal(0, 0.1, cfg.Hidden, 2), B: g.Normal(0, 0.1, 2, cfg.Dim)},
		{Target: "lmhead", A: g.Normal(0, 0.1, cfg.Dim, 2), B: g.Normal(0, 0.1, 2, cfg.Vocab)},
	}
	a, err := nn.NewAdapter(name, 4, pairs)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
