package serve

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"

	"edgellm/internal/nn"
	"edgellm/internal/quant"
	"edgellm/internal/tensor"
)

// TestPackedArtifactInRegistry422 pins what happens when a packed-weight
// artifact (quant's ELLMPKD1 format) lands in the adapter registry
// directory — an easy operator mistake, since both artifact families live
// in flat per-tenant files. The registry must surface it as a corrupt
// adapter: a typed *CorruptAdapterError from Acquire and a clean 422 from
// the HTTP front end, never a panic or a 500.
func TestPackedArtifactInRegistry422(t *testing.T) {
	m := testModel(404)
	dir := t.TempDir()
	p := quant.Pack(tensor.NewRNG(3).Normal(0, 1, 16, 16), 4)
	if err := quant.WritePackedFile(filepath.Join(dir, "tenant-pkd"), p); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(dir, 2)
	_, err := reg.Acquire("tenant-pkd")
	var corrupt *CorruptAdapterError
	if !errors.As(err, &corrupt) {
		t.Fatalf("Acquire on a packed artifact returned %v, want *CorruptAdapterError", err)
	}

	_, ts := newTestServer(t, m, 1, ServerConfig{MaxQueue: 4, Registry: NewRegistry(dir, 2)})
	resp, body := postGenerate(t, ts, generateRequest{
		ID: "p1", Adapter: "tenant-pkd", Prompt: []int{1}, MaxTokens: 2,
	}, nil)
	wantError(t, resp, body, http.StatusUnprocessableEntity, "adapter_corrupt")
}

// TestSchedulerPackedDecodeMatchesFakeQuant pins the serving stack on top
// of packed execution: greedy tokens scheduled through a packed decoder
// must be identical to a solo decoder over the Unpack()-materialized
// weights, and a request naming an adapter must be rejected cleanly (the
// packed decoder is base-model-only).
func TestSchedulerPackedDecodeMatchesFakeQuant(t *testing.T) {
	const seed = 405
	m := testModel(seed)
	specs := []nn.PackSpec{{Bits: 4}, {Bits: 3}}
	pm, err := nn.PackModel(m, specs, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: same seed, block weights overwritten with the packed
	// decode targets.
	ref := testModel(seed)
	for l, blk := range ref.Blocks {
		for wi, w := range blk.WeightMatrices() {
			if mat := pm.Mat(l, wi); mat != nil {
				w.CopyFrom(mat.(interface{ Unpack() *tensor.Tensor }).Unpack())
			}
		}
	}
	prompt := []int{3, 4, 5}
	scfg := nn.SampleConfig{MaxTokens: 6}
	want := soloGenerate(t, ref, prompt, scfg)

	dec := nn.NewBatchDecoder(m, 2, nil)
	defer dec.Close()
	if err := dec.SetPacked(pm); err != nil {
		t.Fatal(err)
	}
	sched := New(dec)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- sched.Serve(ctx) }()
	defer func() { cancel(); <-serveDone }()

	st, err := sched.Submit(Request{ID: "pk1", Prompt: prompt, Cfg: scfg})
	if err != nil {
		t.Fatal(err)
	}
	<-st.Done()
	res := st.Result()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	tokensEqual(t, "packed serve vs fake-quant solo", res.Tokens, want)
}
