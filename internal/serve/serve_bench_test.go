package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"edgellm/internal/nn"
	"edgellm/internal/obsv"
)

// BenchmarkServeSchedulerToken measures the serving path's per-token cost
// through the scheduler at batch 1 (greedy decode, one op per token) with a
// live recorder installed, so the per-stream timing attribution and the
// sampled decode.step spans are in the measured path. The BENCH_serve.json
// gate pins allocs/op at 0: steady-state decode allocates nothing per
// token, and all per-request observability (span records, labeled dists)
// must amortize below one allocation per token.
func BenchmarkServeSchedulerToken(b *testing.B) {
	rec := obsv.New()
	obsv.SetGlobal(rec)
	defer obsv.SetGlobal(nil)

	m := testModel(600)
	dec := nn.NewBatchDecoder(m, 1, nil)
	defer dec.Close()
	sched := New(dec)
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- sched.Serve(ctx) }()

	prompt := []int{1, 2}
	const perReq = 24 // prompt+tokens ≤ the test model's MaxSeq of 32
	b.ReportAllocs()
	b.ResetTimer()
	produced := 0
	for produced < b.N {
		n := perReq
		if rest := b.N - produced; rest < n {
			n = rest
		}
		st, err := sched.Submit(Request{ID: "bench", Prompt: prompt, Cfg: nn.SampleConfig{MaxTokens: n}})
		if err != nil {
			b.Fatal(err)
		}
		<-st.Done()
		if res := st.Result(); res.Err != nil {
			b.Fatal(res.Err)
		}
		produced += n
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(produced)/sec, "tok/s")
	}
	cancel()
	<-serveDone
}

// BenchmarkServeHTTPBatch1 measures one full request through the HTTP front
// end at batch 1 (one op per request, 24 greedy tokens each) with the access
// log writing to a discard sink, and reports throughput plus the p99 of
// serve.queue_wait_ms and serve.ttft_ms. The BENCH_serve.json gates are a
// conservative tok/s floor and generous latency ceilings: they catch
// queueing or admission collapse (a lost wakeup, an accidental serial
// bottleneck), not machine-speed drift.
func BenchmarkServeHTTPBatch1(b *testing.B) {
	rec := obsv.New()
	obsv.SetGlobal(rec)
	defer obsv.SetGlobal(nil)

	m := testModel(601)
	dec := nn.NewBatchDecoder(m, 1, nil)
	defer dec.Close()
	srv := NewServer(dec, ServerConfig{MaxQueue: 4, AccessLog: NewAccessLog(io.Discard)})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Drain()

	const perReq = 24
	blob, err := json.Marshal(generateRequest{ID: "bench", Prompt: []int{1, 2}, MaxTokens: perReq})
	if err != nil {
		b.Fatal(err)
	}
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(ts.URL+"/v1/generate", "application/json", bytes.NewReader(blob))
		if err != nil {
			b.Fatal(err)
		}
		var sink bytes.Buffer
		if _, err := sink.ReadFrom(resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d: %s", resp.StatusCode, sink.Bytes())
		}
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N*perReq)/sec, "tok/s")
	}
	// p99 queue wait and TTFT across tenant label variants.
	var p99, ttft99 float64
	for key, d := range rec.Snapshot().Dists {
		if strings.HasPrefix(key, "serve.queue_wait_ms") && d.P99 > p99 {
			p99 = d.P99
		}
		if strings.HasPrefix(key, "serve.ttft_ms") && d.P99 > ttft99 {
			ttft99 = d.P99
		}
	}
	b.ReportMetric(p99, "p99ms")
	b.ReportMetric(ttft99, "ttftp99ms")
}
