package serve

import (
	"testing"
	"time"
)

// retryAfterSeconds must round up: a sub-second Retry-After config still
// asks clients to wait a full second, and exact multiples stay exact.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Millisecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{2500 * time.Millisecond, 3},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%s) = %d, want %d", c.d, got, c.want)
		}
	}
}
