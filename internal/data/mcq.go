package data

import (
	"fmt"

	"edgellm/internal/tensor"
)

// MCQExample is one multiple-choice question: a prompt, K candidate
// completions, and the index of the correct one. Models answer by scoring
// the LM likelihood of each option after the prompt — the same protocol the
// paper's commonsense-QA evaluation uses.
type MCQExample struct {
	Prompt  []int
	Options [][]int
	Answer  int
}

// MCQDataset is a synthetic question-answering task with genuinely
// generalisable structure: each question shows a context of distinct
// entities followed by a relation token and a query marker,
//
//	[e1 e2 ... eC  rel  ?]  →  answer
//
// where every relation deterministically selects one context position
// (relation r always asks for the r-th entity shown). The correct option
// is that entity; distractors are the other context entities plus one
// entity not in the context. A transformer answers by learning the
// per-relation retrieval rule — an attention pattern — which transfers to
// the held-out split's unseen entity tuples. (An arbitrary fact table
// would make held-out questions unguessable and pin accuracy at chance;
// see DESIGN.md §2.)
type MCQDataset struct {
	// Vocab covers entity tokens, relation tokens, and the query marker.
	Vocab int
	Train []MCQExample
	Test  []MCQExample

	entities   int
	relations  int
	contextLen int
	queryTok   int
}

// NewMCQDataset builds the task: `entities` entity tokens, `relations`
// relation tokens (each bound to one context position), nOptions answer
// candidates per question (context length is nOptions-1), and disjoint
// train/test splits of nTrain and nTest questions.
func NewMCQDataset(seed int64, entities, relations, nOptions, nTrain, nTest int) *MCQDataset {
	if nOptions < 2 {
		panic(fmt.Sprintf("data: need nOptions ≥ 2, got %d", nOptions))
	}
	contextLen := nOptions - 1
	if entities < nOptions {
		panic(fmt.Sprintf("data: need entities ≥ nOptions, got %d/%d", entities, nOptions))
	}
	if relations < 1 {
		panic("data: need at least one relation")
	}
	g := tensor.NewRNG(seed)
	d := &MCQDataset{
		Vocab:      entities + relations + 1,
		entities:   entities,
		relations:  relations,
		contextLen: contextLen,
		queryTok:   entities + relations,
	}
	// position[r] is the context slot relation r retrieves.
	position := make([]int, relations)
	for r := range position {
		position[r] = r % contextLen
	}

	seen := map[string]bool{}
	build := func() MCQExample {
		for {
			// Sample a context of distinct entities and a relation.
			perm := g.Perm(entities)
			ctx := perm[:contextLen]
			distractor := perm[contextLen]
			r := g.Intn(relations)
			key := fmt.Sprint(ctx, r)
			if seen[key] {
				continue
			}
			seen[key] = true

			correct := ctx[position[r]]
			prompt := append(append([]int{}, ctx...), entities+r, d.queryTok)
			// Options: the context entities plus one distractor, shuffled.
			pool := append(append([]int{}, ctx...), distractor)
			order := g.Perm(len(pool))
			opts := make([][]int, len(pool))
			answer := -1
			for i, oi := range order {
				opts[i] = []int{pool[oi]}
				if pool[oi] == correct {
					answer = i
				}
			}
			return MCQExample{Prompt: prompt, Options: opts, Answer: answer}
		}
	}
	for i := 0; i < nTrain; i++ {
		d.Train = append(d.Train, build())
	}
	for i := 0; i < nTest; i++ {
		d.Test = append(d.Test, build())
	}
	return d
}

// TrainSequence converts an example into an LM training pair: the input is
// prompt+correct-option (minus the final token), and targets supervise only
// the option tokens (prompt positions carry ignoreIndex).
func (e MCQExample) TrainSequence(ignoreIndex int) (input, targets []int) {
	full := append(append([]int{}, e.Prompt...), e.Options[e.Answer]...)
	input = full[:len(full)-1]
	targets = make([]int, len(input))
	for i := range targets {
		if i < len(e.Prompt)-1 {
			targets[i] = ignoreIndex
		} else {
			targets[i] = full[i+1]
		}
	}
	return input, targets
}

// ScoreSequences returns, for each option, the (input, targets) pair whose
// summed target log-probability scores that option. Option tokens are
// supervised; prompt tokens are ignored.
func (e MCQExample) ScoreSequences(ignoreIndex int) (inputs [][]int, targets [][]int) {
	for _, opt := range e.Options {
		full := append(append([]int{}, e.Prompt...), opt...)
		in := full[:len(full)-1]
		tgt := make([]int, len(in))
		for i := range tgt {
			if i < len(e.Prompt)-1 {
				tgt[i] = ignoreIndex
			} else {
				tgt[i] = full[i+1]
			}
		}
		inputs = append(inputs, in)
		targets = append(targets, tgt)
	}
	return inputs, targets
}

// MCQBatch samples a training batch of examples (with replacement) and
// returns equal-length input sequences with ignore-padded targets, ready
// for Model.Logits + CrossEntropy.
func (d *MCQDataset) MCQBatch(g *tensor.RNG, batchSize, ignoreIndex int) (inputs [][]int, targets []int) {
	for b := 0; b < batchSize; b++ {
		e := d.Train[g.Intn(len(d.Train))]
		in, tgt := e.TrainSequence(ignoreIndex)
		inputs = append(inputs, in)
		targets = append(targets, tgt...)
	}
	return inputs, targets
}
