package data

import (
	"fmt"
	"testing"
	"testing/quick"

	"edgellm/internal/tensor"
)

func TestMarkovCorpusBasics(t *testing.T) {
	c := MarkovCorpus(1, 32, 5000, 3)
	if len(c.Tokens) != 5000 || c.Vocab != 32 {
		t.Fatalf("corpus len %d vocab %d", len(c.Tokens), c.Vocab)
	}
	for _, tok := range c.Tokens {
		if tok < 0 || tok >= 32 {
			t.Fatalf("token %d out of range", tok)
		}
	}
}

func TestMarkovCorpusDeterministic(t *testing.T) {
	a := MarkovCorpus(42, 16, 1000, 2)
	b := MarkovCorpus(42, 16, 1000, 2)
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatal("same seed must give the same corpus")
		}
	}
	c := MarkovCorpus(43, 16, 1000, 2)
	same := true
	for i := range a.Tokens {
		if a.Tokens[i] != c.Tokens[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical corpora")
	}
}

func TestMarkovCorpusHasStructure(t *testing.T) {
	// With branching 2 out of 32 states, the empirical successor entropy
	// must be far below uniform: count distinct successors per state.
	c := MarkovCorpus(7, 32, 20000, 2)
	succ := make(map[int]map[int]int)
	for i := 0; i+1 < len(c.Tokens); i++ {
		s, n := c.Tokens[i], c.Tokens[i+1]
		if succ[s] == nil {
			succ[s] = map[int]int{}
		}
		succ[s][n]++
	}
	// For each well-observed state, the top-2 successors should dominate.
	for s, m := range succ {
		total, top1, top2 := 0, 0, 0
		for _, cnt := range m {
			total += cnt
			if cnt > top1 {
				top1, top2 = cnt, top1
			} else if cnt > top2 {
				top2 = cnt
			}
		}
		if total < 200 {
			continue
		}
		if frac := float64(top1+top2) / float64(total); frac < 0.8 {
			t.Fatalf("state %d: top-2 successor mass %.2f, want ≥ 0.8", s, frac)
		}
	}
}

func TestBatchShapesAndAlignment(t *testing.T) {
	c := MarkovCorpus(2, 16, 2000, 2)
	g := tensor.NewRNG(3)
	inputs, targets := c.Batch(g, 4, 8)
	if len(inputs) != 4 || len(targets) != 32 {
		t.Fatalf("batch shapes %d, %d", len(inputs), len(targets))
	}
	// The target of position t must be the input at position t+1.
	for b := 0; b < 4; b++ {
		for i := 0; i < 7; i++ {
			if targets[b*8+i] != inputs[b][i+1] {
				t.Fatal("targets must be inputs shifted by one")
			}
		}
	}
}

func TestSequentialBatchesDisjoint(t *testing.T) {
	c := MarkovCorpus(4, 16, 500, 2)
	batches, targets := c.SequentialBatches(2, 10, 100)
	if len(batches) == 0 || len(batches) != len(targets) {
		t.Fatal("no eval batches")
	}
	// 500 tokens / (11 per row · 2 rows) = 22 full batches.
	if len(batches) != 22 {
		t.Fatalf("got %d batches, want 22", len(batches))
	}
	for i, b := range batches {
		if len(b) != 2 || len(targets[i]) != 20 {
			t.Fatal("bad eval batch shape")
		}
	}
}

func TestCopyCorpusStructure(t *testing.T) {
	c := CopyCorpus(5, 11, 20, 6)
	sep := 10
	if len(c.Tokens) != 20*13 {
		t.Fatalf("copy corpus length %d", len(c.Tokens))
	}
	// Each fragment: 6 pattern, sep, 6 pattern — verify the echo.
	for f := 0; f < 20; f++ {
		base := f * 13
		if c.Tokens[base+6] != sep {
			t.Fatalf("fragment %d missing separator", f)
		}
		for i := 0; i < 6; i++ {
			if c.Tokens[base+i] != c.Tokens[base+7+i] {
				t.Fatalf("fragment %d is not an echo", f)
			}
			if c.Tokens[base+i] == sep {
				t.Fatal("pattern must not contain the separator")
			}
		}
	}
}

func TestMCQDatasetBasics(t *testing.T) {
	d := NewMCQDataset(1, 20, 5, 4, 60, 20)
	if len(d.Train) != 60 || len(d.Test) != 20 {
		t.Fatalf("split sizes %d/%d", len(d.Train), len(d.Test))
	}
	if d.Vocab != 26 {
		t.Fatalf("vocab %d, want 20+5+1", d.Vocab)
	}
	for _, e := range append(append([]MCQExample{}, d.Train...), d.Test...) {
		if len(e.Options) != 4 {
			t.Fatal("wrong option count")
		}
		if e.Answer < 0 || e.Answer >= 4 {
			t.Fatal("answer index out of range")
		}
		// Prompt: context (nOptions-1 entities) + relation + query marker.
		if len(e.Prompt) != 5 {
			t.Fatalf("prompt length %d, want 5", len(e.Prompt))
		}
		if e.Prompt[3] < 20 || e.Prompt[3] >= 25 {
			t.Fatal("fourth prompt token must be a relation")
		}
		if e.Prompt[4] != 25 {
			t.Fatal("prompt must end with the query marker")
		}
		// Options must be distinct single entities.
		seen := map[int]bool{}
		for _, o := range e.Options {
			if len(o) != 1 || o[0] < 0 || o[0] >= 20 {
				t.Fatal("option must be one entity token")
			}
			if seen[o[0]] {
				t.Fatal("duplicate option")
			}
			seen[o[0]] = true
		}
	}
}

func TestMCQTrainTestDisjoint(t *testing.T) {
	d := NewMCQDataset(2, 12, 3, 3, 40, 20)
	key := func(p []int) string { return fmt.Sprint(p) }
	seen := map[string]bool{}
	for _, e := range d.Train {
		seen[key(e.Prompt)] = true
	}
	for _, e := range d.Test {
		if seen[key(e.Prompt)] {
			t.Fatal("test question also appears in train")
		}
	}
}

func TestMCQRetrievalStructure(t *testing.T) {
	// Each relation must always retrieve the same context position, and
	// the correct option must be the entity at that position — the
	// generalisable rule a transformer can learn via attention.
	d := NewMCQDataset(9, 14, 3, 4, 40, 20)
	posOf := map[int]int{} // relation token → context position
	for _, e := range append(append([]MCQExample{}, d.Train...), d.Test...) {
		ctx := e.Prompt[:3]
		rTok := e.Prompt[3]
		correct := e.Options[e.Answer][0]
		pos := -1
		for i, c := range ctx {
			if c == correct {
				pos = i
				break
			}
		}
		if pos == -1 {
			t.Fatal("correct answer not in the context")
		}
		if prev, ok := posOf[rTok]; ok && prev != pos {
			t.Fatalf("relation %d retrieves positions %d and %d", rTok, prev, pos)
		}
		posOf[rTok] = pos
		// Exactly one option must lie outside the context.
		outside := 0
		for _, o := range e.Options {
			in := false
			for _, c := range ctx {
				if o[0] == c {
					in = true
				}
			}
			if !in {
				outside++
			}
		}
		if outside != 1 {
			t.Fatalf("%d options outside context, want 1", outside)
		}
	}
}

func TestMCQLearnableAboveChance(t *testing.T) {
	// Sanity-check the task design end to end: a scorer implementing the
	// retrieval rule perfectly must reach 100% on the held-out split.
	d := NewMCQDataset(10, 16, 3, 4, 30, 30)
	for _, e := range d.Test {
		r := e.Prompt[3] - 16
		want := e.Prompt[r%3]
		if e.Options[e.Answer][0] != want {
			t.Fatal("oracle rule disagrees with the dataset answer")
		}
	}
}

func TestMCQTrainSequence(t *testing.T) {
	e := MCQExample{Prompt: []int{3, 9, 12}, Options: [][]int{{1}, {5}}, Answer: 1}
	in, tgt := e.TrainSequence(-1)
	// full = [3 9 12 5]; input = [3 9 12]; targets = [-1 -1 5]
	want := []int{3, 9, 12}
	for i, v := range want {
		if in[i] != v {
			t.Fatalf("input %v", in)
		}
	}
	if tgt[0] != -1 || tgt[1] != -1 || tgt[2] != 5 {
		t.Fatalf("targets %v", tgt)
	}
}

func TestMCQScoreSequences(t *testing.T) {
	e := MCQExample{Prompt: []int{3, 9, 12}, Options: [][]int{{1}, {5}}, Answer: 0}
	ins, tgts := e.ScoreSequences(-1)
	if len(ins) != 2 || len(tgts) != 2 {
		t.Fatal("need one scoring sequence per option")
	}
	if tgts[0][2] != 1 || tgts[1][2] != 5 {
		t.Fatalf("scoring targets wrong: %v", tgts)
	}
}

func TestMCQBatch(t *testing.T) {
	d := NewMCQDataset(3, 10, 4, 3, 30, 5)
	g := tensor.NewRNG(4)
	ins, tgts := d.MCQBatch(g, 6, -1)
	if len(ins) != 6 {
		t.Fatal("wrong batch size")
	}
	if len(tgts) != 6*len(ins[0]) {
		t.Fatal("targets not aligned to flattened inputs")
	}
}

func TestPropMarkovTokensInRange(t *testing.T) {
	f := func(seed int64, v8, b8 uint8) bool {
		vocab := int(v8%30) + 2
		branching := int(b8)%vocab + 1
		c := MarkovCorpus(seed, vocab, 200, branching)
		for _, tok := range c.Tokens {
			if tok < 0 || tok >= vocab {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMCQAnswerConsistent(t *testing.T) {
	f := func(seed int64) bool {
		d := NewMCQDataset(seed, 15, 4, 4, 20, 10)
		for _, e := range append(append([]MCQExample{}, d.Train...), d.Test...) {
			in, tgt := e.TrainSequence(-1)
			// The supervised tail of the train sequence must spell the
			// correct option.
			correct := e.Options[e.Answer]
			if tgt[len(tgt)-1] != correct[len(correct)-1] {
				return false
			}
			if len(in) != len(tgt) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
