// Package data generates the deterministic synthetic workloads this
// reproduction tunes on, standing in for the paper's MMLU / commonsense-QA
// corpora (see DESIGN.md §2 for the substitution argument):
//
//   - a Markov-chain character corpus for language-model perplexity,
//   - a copy/induction task with a sharp learnable rule,
//   - a templated multiple-choice QA dataset scored by LM likelihood.
//
// All generators are seeded, so every experiment in EXPERIMENTS.md is
// exactly reproducible.
package data

import (
	"fmt"

	"edgellm/internal/tensor"
)

// Corpus is a flat token stream plus its vocabulary size.
type Corpus struct {
	Tokens []int
	Vocab  int
}

// MarkovCorpus generates a token stream from a random first-order Markov
// chain over vocab symbols. Each state transitions to `branching` preferred
// successors with high probability, giving the stream compressible
// structure that a language model can learn (perplexity well below vocab)
// without memorising it trivially.
func MarkovCorpus(seed int64, vocab, length, branching int) *Corpus {
	if vocab < 2 || branching < 1 || branching > vocab {
		panic(fmt.Sprintf("data: bad MarkovCorpus params vocab=%d branching=%d", vocab, branching))
	}
	g := tensor.NewRNG(seed)
	// succ[s] lists the preferred successors of state s.
	succ := make([][]int, vocab)
	for s := range succ {
		perm := g.Perm(vocab)
		succ[s] = perm[:branching]
	}
	const noise = 0.05 // probability of a uniform-random transition
	tokens := make([]int, length)
	state := g.Intn(vocab)
	for i := range tokens {
		tokens[i] = state
		if g.Float64() < noise {
			state = g.Intn(vocab)
		} else {
			state = succ[state][g.Intn(branching)]
		}
	}
	return &Corpus{Tokens: tokens, Vocab: vocab}
}

// Batch samples batchSize windows of seqLen+1 tokens and splits them into
// model inputs (batchSize × seqLen) and next-token targets flattened
// batch-major (batchSize·seqLen), matching the row layout of model logits.
func (c *Corpus) Batch(g *tensor.RNG, batchSize, seqLen int) (inputs [][]int, targets []int) {
	if len(c.Tokens) < seqLen+1 {
		panic(fmt.Sprintf("data: corpus of %d tokens too short for seqLen %d", len(c.Tokens), seqLen))
	}
	inputs = make([][]int, batchSize)
	targets = make([]int, 0, batchSize*seqLen)
	for b := 0; b < batchSize; b++ {
		start := g.Intn(len(c.Tokens) - seqLen - 1)
		inputs[b] = c.Tokens[start : start+seqLen]
		targets = append(targets, c.Tokens[start+1:start+seqLen+1]...)
	}
	return inputs, targets
}

// SequentialBatches cuts the corpus into consecutive non-overlapping
// evaluation batches, for deterministic perplexity measurement.
func (c *Corpus) SequentialBatches(batchSize, seqLen, maxBatches int) (batches [][][]int, targets [][]int) {
	stride := seqLen + 1
	pos := 0
	for len(batches) < maxBatches {
		var ins [][]int
		var tgt []int
		for b := 0; b < batchSize; b++ {
			if pos+stride > len(c.Tokens) {
				return batches, targets
			}
			ins = append(ins, c.Tokens[pos:pos+seqLen])
			tgt = append(tgt, c.Tokens[pos+1:pos+seqLen+1]...)
			pos += stride
		}
		batches = append(batches, ins)
		targets = append(targets, tgt)
	}
	return batches, targets
}

// PermuteTokens returns a copy of the corpus with every token id remapped
// through a seeded random permutation of the vocabulary. The stream keeps
// its statistical structure but every surface symbol changes — a
// *low-level* domain shift that forces adaptation of the embedding-adjacent
// layers, unlike a plain chain change which the top of the network can
// absorb. Used by the window-strategy ablation.
func PermuteTokens(c *Corpus, seed int64) *Corpus {
	g := tensor.NewRNG(seed)
	perm := g.Perm(c.Vocab)
	out := &Corpus{Tokens: make([]int, len(c.Tokens)), Vocab: c.Vocab}
	for i, tok := range c.Tokens {
		out.Tokens[i] = perm[tok]
	}
	return out
}

// CopyCorpus generates an induction workload: fragments of the form
// [pattern, SEP, pattern] concatenated into a stream. The model must learn
// to reproduce the pattern after the separator; the second half of each
// fragment is fully predictable, so a capable tuner drives its loss toward
// zero. The separator is token vocab-1; patterns use tokens [0, vocab-1).
func CopyCorpus(seed int64, vocab, fragments, patternLen int) *Corpus {
	if vocab < 3 || patternLen < 1 {
		panic("data: bad CopyCorpus params")
	}
	g := tensor.NewRNG(seed)
	sep := vocab - 1
	tokens := make([]int, 0, fragments*(2*patternLen+1))
	for f := 0; f < fragments; f++ {
		pat := make([]int, patternLen)
		for i := range pat {
			pat[i] = g.Intn(vocab - 1)
		}
		tokens = append(tokens, pat...)
		tokens = append(tokens, sep)
		tokens = append(tokens, pat...)
	}
	return &Corpus{Tokens: tokens, Vocab: vocab}
}
