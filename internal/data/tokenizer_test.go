package data

import (
	"testing"
	"testing/quick"
)

func TestCharTokenizerRoundtrip(t *testing.T) {
	tok := NewCharTokenizer("hello world")
	ids, err := tok.Encode("hello world")
	if err != nil {
		t.Fatal(err)
	}
	back, err := tok.Decode(ids)
	if err != nil {
		t.Fatal(err)
	}
	if back != "hello world" {
		t.Fatalf("roundtrip gave %q", back)
	}
	// vocab: ' ', d, e, h, l, o, r, w = 8 distinct runes
	if tok.Vocab() != 8 {
		t.Fatalf("vocab %d, want 8", tok.Vocab())
	}
}

func TestCharTokenizerDeterministicIDs(t *testing.T) {
	a := NewCharTokenizer("cba")
	b := NewCharTokenizer("abc")
	for _, s := range []string{"a", "b", "c"} {
		ia, _ := a.Encode(s)
		ib, _ := b.Encode(s)
		if ia[0] != ib[0] {
			t.Fatal("ids must depend on sorted runes, not sample order")
		}
	}
}

func TestCharTokenizerErrors(t *testing.T) {
	tok := NewCharTokenizer("ab")
	if _, err := tok.Encode("abc"); err == nil {
		t.Fatal("unknown rune must error")
	}
	if _, err := tok.Decode([]int{5}); err == nil {
		t.Fatal("out-of-range id must error")
	}
	if _, err := tok.Decode([]int{-1}); err == nil {
		t.Fatal("negative id must error")
	}
}

func TestEncodeCorpus(t *testing.T) {
	tok := NewCharTokenizer("xyz")
	c, err := tok.EncodeCorpus("zyxzyx")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Tokens) != 6 || c.Vocab != 3 {
		t.Fatalf("corpus %d tokens vocab %d", len(c.Tokens), c.Vocab)
	}
}

func TestRenderCorpus(t *testing.T) {
	c := MarkovCorpus(1, 32, 500, 3)
	text, tok, err := RenderCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	if len([]rune(text)) != 500 {
		t.Fatalf("rendered %d runes", len([]rune(text)))
	}
	back, err := tok.Encode(text)
	if err != nil {
		t.Fatal(err)
	}
	for i, tokID := range back {
		if tokID != c.Tokens[i] {
			t.Fatal("render→encode must reproduce the corpus")
		}
	}
	// Oversized vocab must be rejected.
	if _, _, err := RenderCorpus(&Corpus{Tokens: []int{0}, Vocab: 1000}); err == nil {
		t.Fatal("oversized vocab must error")
	}
}

func TestPropTokenizerRoundtrip(t *testing.T) {
	tok := NewCharTokenizer("abcdefgh ")
	f := func(raw []byte) bool {
		// Map arbitrary bytes into the known alphabet.
		alphabet := "abcdefgh "
		var s []rune
		for _, b := range raw {
			s = append(s, rune(alphabet[int(b)%len(alphabet)]))
		}
		ids, err := tok.Encode(string(s))
		if err != nil {
			return false
		}
		back, err := tok.Decode(ids)
		return err == nil && back == string(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
