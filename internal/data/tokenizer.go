package data

import (
	"fmt"
	"sort"
	"strings"
)

// CharTokenizer maps runes to dense token ids and back — the bridge
// between the integer corpora the pipeline trains on and human-readable
// text, used by the generation tooling.
type CharTokenizer struct {
	runeToID map[rune]int
	idToRune []rune
}

// NewCharTokenizer builds a tokenizer over the distinct runes of the
// sample text, in sorted order for determinism.
func NewCharTokenizer(sample string) *CharTokenizer {
	set := map[rune]bool{}
	for _, r := range sample {
		set[r] = true
	}
	runes := make([]rune, 0, len(set))
	for r := range set {
		runes = append(runes, r)
	}
	sort.Slice(runes, func(i, j int) bool { return runes[i] < runes[j] })
	t := &CharTokenizer{runeToID: make(map[rune]int, len(runes)), idToRune: runes}
	for i, r := range runes {
		t.runeToID[r] = i
	}
	return t
}

// Vocab returns the vocabulary size.
func (t *CharTokenizer) Vocab() int { return len(t.idToRune) }

// Encode converts text to token ids, erroring on unknown runes.
func (t *CharTokenizer) Encode(text string) ([]int, error) {
	out := make([]int, 0, len(text))
	for _, r := range text {
		id, ok := t.runeToID[r]
		if !ok {
			return nil, fmt.Errorf("data: rune %q not in vocabulary", r)
		}
		out = append(out, id)
	}
	return out, nil
}

// Decode converts token ids back to text, erroring on out-of-range ids.
func (t *CharTokenizer) Decode(ids []int) (string, error) {
	var b strings.Builder
	for _, id := range ids {
		if id < 0 || id >= len(t.idToRune) {
			return "", fmt.Errorf("data: token id %d out of range [0,%d)", id, len(t.idToRune))
		}
		b.WriteRune(t.idToRune[id])
	}
	return b.String(), nil
}

// EncodeCorpus tokenizes text into a Corpus.
func (t *CharTokenizer) EncodeCorpus(text string) (*Corpus, error) {
	tokens, err := t.Encode(text)
	if err != nil {
		return nil, err
	}
	return &Corpus{Tokens: tokens, Vocab: t.Vocab()}, nil
}

// RenderCorpus maps a generated integer corpus onto a printable alphabet
// (letters, digits, punctuation) so samples can be displayed; it requires
// the corpus vocabulary to fit the alphabet.
func RenderCorpus(c *Corpus) (string, *CharTokenizer, error) {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:!?"
	runes := []rune(alphabet)
	if c.Vocab > len(runes) {
		return "", nil, fmt.Errorf("data: vocab %d exceeds printable alphabet %d", c.Vocab, len(runes))
	}
	var b strings.Builder
	for _, tok := range c.Tokens {
		b.WriteRune(runes[tok])
	}
	text := b.String()
	// The returned tokenizer preserves alphabet order (id i ↔ runes[i]) so
	// re-encoding the rendered text reproduces the original token ids.
	tok := &CharTokenizer{runeToID: make(map[rune]int, c.Vocab), idToRune: append([]rune(nil), runes[:c.Vocab]...)}
	for i, r := range tok.idToRune {
		tok.runeToID[r] = i
	}
	return text, tok, nil
}
