// Quickstart: the shortest path through the Edge-LLM pipeline — build a
// model, compress it with LUC, adapt it with adaptive layer tuning, and
// run voted inference.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"edgellm/internal/core"
	"edgellm/internal/hwsim"
)

func main() {
	// 1. Configure. DefaultConfig is a 6-layer toy transformer plus the
	// Edge-LLM knobs: a 3-bit average compression budget, a 2-layer
	// tuning window, and calibrated voting.
	cfg := core.DefaultConfig()
	task := core.NewTask(7, cfg.Model.Vocab)

	// Pretrain the shared base model on the source domain once — the
	// paper's setting is adapting a *pretrained* LLM, not training from
	// scratch.
	fmt.Println("pretraining base model on the source domain...")
	task.EnsureBase(context.Background(), cfg, 600)

	p, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	task.ApplyBase(p.Model)
	fmt.Printf("target-domain perplexity before adaptation: %.2f\n", p.EvalPerplexity(task.Eval, 8))

	// 2. Compress the backbone: probe per-layer sensitivity, pick a
	// layerwise (bits, sparsity) policy under the budget, apply it.
	calib, _ := task.Train.SequentialBatches(cfg.Batch, cfg.Seq, 2)
	var flat [][]int
	for _, b := range calib {
		flat = append(flat, b...)
	}
	if err := p.Compress(flat); err != nil {
		panic(err)
	}
	fmt.Printf("LUC policy: %s (avg %.2f bits)\n",
		p.Policy.Describe(p.Candidates()), p.Info.AvgEffectiveBits)

	// 3. Adapt: each iteration tunes one window of layers with the loss
	// at that window's exit head, bounding backprop depth and memory.
	losses := p.Tune(task.Train, 300)
	fmt.Printf("tuning loss: %.3f → %.3f over %d iterations\n",
		losses[0], losses[len(losses)-1], len(losses))

	// 4. Vote: combine the tuned exit heads (calibrated on held-out data)
	// and evaluate.
	cb, ct := task.EvalTail(cfg.Batch, cfg.Seq, 4)
	p.FinishTuning(cb, ct)
	fmt.Printf("target-domain perplexity after adaptation (voted): %.2f\n", p.EvalPerplexity(task.Eval, 8))

	// 5. Report the modeled edge-device cost of one tuning iteration.
	// (This toy model is launch-latency-bound on a 1 TFLOP/s device, hence
	// the tiny utilization; `edgellm experiments -t T3` shows the
	// TinyLlama-class workload where scheduling matters.)
	mem := p.Memory()
	iter := p.IterationCost(hwsim.NewSearchedScheduler())
	fmt.Printf("per-iteration: %.2f KiB tuning memory, %.2f ms on %s\n",
		float64(mem.Total())/1024, iter.TotalSec*1e3, cfg.Device.Name)
}
