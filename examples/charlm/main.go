// charlm adapts a language model to a synthetic character stream with all
// four tuning methods and prints their quality/cost trade-off — the
// workload behind Table T1, run at example scale.
//
//	go run ./examples/charlm
package main

import (
	"context"
	"fmt"
	"time"

	"edgellm/internal/core"
)

func main() {
	cfg := core.DefaultConfig()
	task := core.NewTask(2024, cfg.Model.Vocab)
	opts := core.RunOpts{Iters: 300, MCQIters: 0, EvalBatches: 10}

	fmt.Println("pretraining the shared base model on the source stream...")
	task.EnsureBase(context.Background(), cfg, 700)
	fmt.Printf("adapting the %d-layer base model to a shifted Markov stream (vocab %d)\n\n",
		cfg.Model.Layers, cfg.Model.Vocab)

	type run struct {
		name string
		f    func() core.MethodResult
	}
	ctx := context.Background()
	runs := []run{
		{"Vanilla full fine-tuning", func() core.MethodResult { return core.RunVanillaFT(ctx, cfg, task, opts) }},
		{"LoRA (rank 4)", func() core.MethodResult { return core.RunLoRA(ctx, cfg, task, opts, 4) }},
		{"Layer-freeze (top-2)", func() core.MethodResult { return core.RunLayerFreeze(ctx, cfg, task, opts, 2) }},
		{"Edge-LLM (LUC + window-2 + voting)", func() core.MethodResult { return core.RunEdgeLLM(ctx, cfg, task, opts) }},
	}

	var vanillaIter float64
	for i, r := range runs {
		start := time.Now()
		res := r.f()
		if i == 0 {
			vanillaIter = res.IterCost.TotalSec
		}
		fmt.Printf("%-36s ppl %-8.3f mem %8.1f KiB  sim-iter %6.2f ms (%.2fx)  [wall %s]\n",
			r.name, res.PPL, float64(res.Memory.Total())/1024,
			res.IterCost.TotalSec*1e3, vanillaIter/res.IterCost.TotalSec,
			time.Since(start).Round(time.Millisecond))
	}

	fmt.Println("\nexpected shape: Edge-LLM approaches vanilla quality at the lowest")
	fmt.Println("per-iteration memory and simulated latency of the four. On this mild")
	fmt.Println("domain shift layer-freeze also scores well — but at ~25% more memory")
	fmt.Println("and 40% more latency, and without Edge-LLM's full-depth reach.")
}
