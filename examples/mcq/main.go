// mcq adapts a model to a synthetic knowledge-base question-answering task
// (the stand-in for the paper's commonsense corpora) and shows what each
// piece of the voting scheme contributes: single exits, uniform voting,
// confidence voting, and calibrated voting.
//
//	go run ./examples/mcq
package main

import (
	"context"
	"fmt"

	"edgellm/internal/adapt"
	ag "edgellm/internal/autograd"
	"edgellm/internal/core"
	"edgellm/internal/train"
)

func main() {
	cfg := core.DefaultConfig()
	task := core.NewTask(555, cfg.Model.Vocab)

	fmt.Printf("MCQ task: %d train / %d test questions, %d options each\n",
		len(task.MCQ.Train), len(task.MCQ.Test), len(task.MCQ.Train[0].Options))
	fmt.Printf("chance accuracy: %.1f%%\n\n", 100.0/float64(len(task.MCQ.Train[0].Options)))

	fmt.Println("pretraining the base model on the source LM stream...")
	task.EnsureBase(context.Background(), cfg, 600)

	p, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	task.ApplyBase(p.Model)
	calib, _ := task.Train.SequentialBatches(cfg.Batch, cfg.Seq, 2)
	var flat [][]int
	for _, b := range calib {
		flat = append(flat, b...)
	}
	if err := p.Compress(flat); err != nil {
		panic(err)
	}
	fmt.Printf("compressed backbone to %.2f avg bits; tuning on the MCQ split...\n\n", p.Info.AvgEffectiveBits)
	p.TuneMCQ(task.MCQ, 400)

	// Score the test split through each head individually...
	for _, exit := range []int{0, cfg.Model.Layers / 2, cfg.Model.Layers - 1} {
		acc := train.MCQAccuracy(func(b [][]int) *ag.Value {
			return p.Model.LogitsAtExit(b, exit)
		}, task.MCQ.Test)
		fmt.Printf("exit at layer %d alone:        %.1f%%\n", exit, acc*100)
	}
	accFinal := train.MCQAccuracy(func(b [][]int) *ag.Value {
		return p.Model.Logits(b)
	}, task.MCQ.Test)
	fmt.Printf("final head alone:             %.1f%%\n\n", accFinal*100)

	// ...and through each voting mode over all tuned exits + final head.
	exits := append(p.Tuner.TunedExits(), adapt.FinalHead(p.Model))
	// Calibration batches come from MCQ training sequences.
	var cb [][][]int
	var ct [][]int
	for i := 0; i < 10 && i < len(task.MCQ.Train); i++ {
		in, tg := task.MCQ.Train[i].TrainSequence(-1)
		cb = append(cb, [][]int{in})
		ct = append(ct, tg)
	}
	for _, mode := range []adapt.VotingMode{adapt.VoteUniform, adapt.VoteConfidence, adapt.VoteCalibrated} {
		v := adapt.NewVoter(exits, mode)
		if mode == adapt.VoteCalibrated {
			v.Calibrate(p.Model, cb, ct, 0.5)
		}
		acc := train.MCQAccuracy(func(b [][]int) *ag.Value {
			return v.Logits(p.Model, b)
		}, task.MCQ.Test)
		fmt.Printf("voting (%s): %*s%.1f%%\n", mode, 14-len(mode.String()), "", acc*100)
	}
	fmt.Println("\nexpected shape: voting is competitive with the best single head")
	fmt.Println("without knowing in advance which head that is — the point of the")
	fmt.Println("adaptive combination (see ablation A4 for the LM-perplexity version).")
}
