// schedsearch explores the hardware scheduling search space for the
// kernels of a compressed TinyLlama-class layer on the simulated edge GPU:
// how much latency the schedule choice is worth, where the best schedules
// live, and how compression changes the optimal mapping.
//
//	go run ./examples/schedsearch
package main

import (
	"fmt"

	"edgellm/internal/core"
	"edgellm/internal/hwsim"
)

func main() {
	dev := hwsim.EdgeGPU()
	cfg := core.EdgeModelConfig()
	rows := 4 * 256 // batch 4 × seq 256 tokens

	fmt.Printf("device: %s (%.0f GFLOP/s fp16, %.0f GB/s, %d KiB SRAM/SM, %d SMs)\n\n",
		dev.Name, dev.PeakFLOPS/1e9, dev.DRAMBandwidth/1e9, dev.SRAMBytes/1024, dev.SMs)

	// The same attention-projection GEMM at different compression levels:
	// watch the optimal schedule and the achievable latency move.
	fmt.Println("attention projection GEMM (2048→2048) vs compression:")
	for _, c := range []hwsim.LayerCompression{
		{Bits: 16, Sparsity: 0},
		{Bits: 8, Sparsity: 0},
		{Bits: 4, Sparsity: 0},
		{Bits: 4, Sparsity: 0.5},
		{Bits: 2, Sparsity: 0.75},
	} {
		g := hwsim.GEMM{M: rows, K: cfg.Dim, N: cfg.Dim, WeightBits: c.Bits, WeightSparsity: c.Sparsity}
		sched, cost := hwsim.SearchExhaustive(dev, g)
		naive := hwsim.NaiveSchedule().Cost(dev, g)
		fmt.Printf("  %2d-bit @ %2.0f%% sparse: best %7.3f ms via %-16s (naive %7.3f ms, %4.1fx; util %4.1f%%)\n",
			c.Bits, c.Sparsity*100, cost.TotalSec*1e3, sched.String(),
			naive.TotalSec*1e3, naive.TotalSec/cost.TotalSec, cost.Utilization(dev)*100)
	}

	// Full-space statistics for one hard kernel: the latency spread shows
	// why an explicit search space matters.
	g := hwsim.GEMM{M: rows, K: cfg.Hidden, N: cfg.Dim, WeightBits: 4, WeightSparsity: 0.5}
	st := hwsim.AnalyzeSpace(dev, g)
	fmt.Printf("\nmlp-down kernel schedule space: %d schedules, best %.3f ms, median %.3f ms, worst %.3f ms\n",
		st.Count, st.BestSec*1e3, st.MedianSec*1e3, st.WorstSec*1e3)
	fmt.Printf("picking schedules at random leaves %.1fx on the table vs the searched best\n",
		st.MedianSec/st.BestSec)

	// Simulated annealing vs exhaustive: the cheap search is usually
	// within a few percent.
	_, sa := hwsim.SearchAnnealed(dev, g, 42, 2000)
	fmt.Printf("simulated annealing reaches %.3f ms (%.2fx of exhaustive best)\n",
		sa.TotalSec*1e3, sa.TotalSec/st.BestSec)

	// End-to-end: per-iteration latency of vanilla vs Edge-LLM tuning.
	vanilla := hwsim.IterationCost(dev, hwsim.NewSearchedScheduler(), hwsim.VanillaIteration(cfg, 4, 256))
	edge := hwsim.VanillaIteration(cfg, 4, 256)
	for i := range edge.Compression {
		edge.Compression[i] = hwsim.LayerCompression{Bits: 4, Sparsity: 0.5}
	}
	edge.WindowLo, edge.WindowHi = 10, 11
	edgeCost := hwsim.IterationCost(dev, hwsim.NewSearchedScheduler(), edge)
	fmt.Printf("\nfull tuning iteration:   %8.1f ms (vanilla, all %d layers)\n", vanilla.TotalSec*1e3, cfg.Layers)
	fmt.Printf("Edge-LLM iteration:      %8.1f ms (4-bit/50%% backbone, window 2) → %.2fx speedup\n",
		edgeCost.TotalSec*1e3, hwsim.Speedup(vanilla, edgeCost))
}
