// Command benchguard turns `go test -bench` output into a machine-readable
// BENCH_kernels.json artifact and, given a checked-in baseline, gates the
// run:
//
//   - allocs/op and B/op for the baseline's gated benchmarks must stay
//     within the baseline's tolerance (these are machine-independent for
//     benchmarks whose kernels stay below the tensor parallel threshold);
//   - the parallel backward kernels must beat their single-band serial
//     variants by the baseline's min_speedup — checked only when the
//     benchmarks ran at ≥4 procs, since the speedup criterion is defined
//     on ≥4 cores;
//   - benchmarks reporting the custom tok/s metric (the decode and serve
//     suites) must stay above the baseline's tok_s floor minus the
//     tolerance, and any extra speedup pairs the baseline declares (e.g.
//     batch-8 decode vs one-at-a-time) must reach their min ratio on ≥4
//     procs;
//   - benchmarks reporting the custom p99ms metric (the serve suite's
//     queue-wait tail) must stay below the baseline's p99_ms ceiling plus
//     the tolerance — a generous bound that catches queueing collapse (a
//     lost wakeup, unbounded waiting), not latency drift;
//   - benchmarks reporting the custom wbytes metric (the packed suite's
//     resident weight bytes) must stay at or below the baseline's wbytes
//     ceiling exactly — packed storage is deterministic, so any growth
//     means the bit budget stopped buying the bytes it claims.
//
// Wall-clock ns/op is recorded in the artifact but never gated: it is not
// comparable across machines. The decode baseline's tok/s floors are set
// far below any observed run for the same reason — they catch collapse
// (an accidental O(n²) step, a lost cache), not drift.
//
// Usage:
//
//	go test -bench 'BenchmarkKernel|BenchmarkStep' -benchmem -run '^$' \
//	    ./internal/tensor ./internal/train | \
//	  go run ./cmd/benchguard -out BENCH_kernels.json -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchResult struct {
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	MBs        float64 `json:"mb_s,omitempty"`
	TokS       float64 `json:"tok_s,omitempty"`
	P99MS      float64 `json:"p99_ms,omitempty"`
	TTFTP99MS  float64 `json:"ttft_p99_ms,omitempty"`
	WBytes     float64 `json:"wbytes,omitempty"`
	BOp        int64   `json:"b_op"`
	AllocsOp   int64   `json:"allocs_op"`
}

type report struct {
	GoVersion  string                 `json:"go_version"`
	NumCPU     int                    `json:"num_cpu"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
	Speedups   map[string]float64     `json:"speedups,omitempty"`
}

type gate struct {
	BOp      int64 `json:"b_op"`
	AllocsOp int64 `json:"allocs_op"`
	// TokS, when > 0, is a throughput floor on the benchmark's custom
	// tok/s metric: the run must reach TokS·(1 − tolerance). Baseline
	// values are set conservatively (well below a cold CI runner) because
	// throughput, unlike allocs, is machine-dependent.
	TokS float64 `json:"tok_s,omitempty"`
	// P99MS, when > 0, is a latency ceiling on the benchmark's custom p99ms
	// metric: the run must stay under P99MS·(1 + tolerance). Baselines set
	// it far above any healthy run — it exists to catch a collapsed queue,
	// not to measure machines.
	P99MS float64 `json:"p99_ms,omitempty"`
	// TTFTP99MS, when > 0, is the same kind of ceiling on the custom
	// ttftp99ms metric (p99 time-to-first-token): it catches a regression
	// that delays the first token — admission or prompt-step collapse —
	// which aggregate tok/s can hide.
	TTFTP99MS float64 `json:"ttft_p99_ms,omitempty"`
	// WBytes, when > 0, is an exact ceiling on the benchmark's custom
	// wbytes metric (packed resident weight bytes). No tolerance: packed
	// storage is a deterministic function of shape and bit width, so any
	// increase is a real regression in the bit budget's memory story.
	WBytes float64 `json:"wbytes,omitempty"`
}

// speedupSpec names a (parallel, serial) benchmark pair whose ns/op ratio
// must reach Min (the baseline's min_speedup when 0). Pairs are gated only
// when the run used ≥4 procs.
type speedupSpec struct {
	Parallel string  `json:"parallel"`
	Serial   string  `json:"serial"`
	Min      float64 `json:"min,omitempty"`
}

type baseline struct {
	// Tolerance is the allowed fractional regression over the gated
	// values, e.g. 0.20 fails anything more than 20% worse.
	Tolerance float64 `json:"tolerance"`
	// MinSpeedup is the required parallel-vs-serial ratio for the backward
	// kernels, enforced only when the run used ≥4 procs.
	MinSpeedup float64         `json:"min_speedup"`
	Gates      map[string]gate `json:"gates"`
	// Speedups adds baseline-specific pairs (e.g. the decode baseline's
	// batch-vs-serial throughput ratio) to the built-in kernel pairs.
	Speedups map[string]speedupSpec `json:"speedups,omitempty"`
}

// builtinSpeedups are the kernel pairs every run derives. MatMulT and
// TMatMul are the backward-pass kernels.
var builtinSpeedups = map[string]speedupSpec{
	"matmult_parallel_vs_serial": {Parallel: "KernelMatMulT512", Serial: "KernelMatMulTSerial512"},
	"tmatmul_parallel_vs_serial": {Parallel: "KernelTMatMul512", Serial: "KernelTMatMulSerial512"},
}

// speedupPairs merges the built-in kernel pairs with a baseline's own.
func speedupPairs(base *baseline) map[string]speedupSpec {
	pairs := map[string]speedupSpec{}
	for name, spec := range builtinSpeedups {
		pairs[name] = spec
	}
	if base != nil {
		for name, spec := range base.Speedups {
			pairs[name] = spec
		}
	}
	return pairs
}

func main() {
	in := flag.String("in", "", "bench output file (default stdin)")
	out := flag.String("out", "BENCH_kernels.json", "JSON artifact to write")
	basePath := flag.String("baseline", "", "baseline JSON to gate against (optional)")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	var base *baseline
	if *basePath != "" {
		b, err := loadBaseline(*basePath)
		if err != nil {
			fatal(err)
		}
		base = &b
	}

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Benchmarks: map[string]benchResult{},
	}
	if err := parseBench(r, rep.Benchmarks); err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	rep.Speedups = deriveSpeedups(rep.Benchmarks, speedupPairs(base))

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchguard: wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))

	if base == nil {
		return
	}
	if errs := check(rep, *base); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL: %v\n", e)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: all gates passed")
}

// parseBench reads `go test -bench` text output. Lines look like
//
//	BenchmarkKernelMatMulT512-8  42  28405030 ns/op  28.34 MB/s  12 B/op  1 allocs/op
//
// with the -procs suffix omitted when GOMAXPROCS is 1 and the MB/s, B/op,
// allocs/op columns present only when the benchmark reports them.
func parseBench(r io.Reader, out map[string]benchResult) error {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		procs := 1
		if i := strings.LastIndex(name, "-"); i >= 0 {
			if p, err := strconv.Atoi(name[i+1:]); err == nil {
				procs = p
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := benchResult{Procs: procs, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsOp = v
			case "MB/s":
				res.MBs = v
			case "tok/s":
				res.TokS = v
			case "p99ms":
				res.P99MS = v
			case "ttftp99ms":
				res.TTFTP99MS = v
			case "wbytes":
				res.WBytes = v
			case "B/op":
				res.BOp = int64(v)
			case "allocs/op":
				res.AllocsOp = int64(v)
			}
		}
		out[name] = res
	}
	return sc.Err()
}

func deriveSpeedups(benches map[string]benchResult, pairs map[string]speedupSpec) map[string]float64 {
	out := map[string]float64{}
	for name, spec := range pairs {
		par, okP := benches[spec.Parallel]
		ser, okS := benches[spec.Serial]
		if okP && okS && par.NsOp > 0 {
			out[name] = ser.NsOp / par.NsOp
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func loadBaseline(path string) (baseline, error) {
	var b baseline
	blob, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(blob, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if b.Tolerance <= 0 {
		b.Tolerance = 0.20
	}
	if b.MinSpeedup <= 0 {
		b.MinSpeedup = 2.0
	}
	return b, nil
}

func check(rep report, base baseline) []error {
	var errs []error
	for name, g := range base.Gates {
		got, ok := rep.Benchmarks[name]
		if !ok {
			errs = append(errs, fmt.Errorf("gated benchmark %s missing from run", name))
			continue
		}
		if max := withTolerance(g.AllocsOp, base.Tolerance); got.AllocsOp > max {
			errs = append(errs, fmt.Errorf("%s: %d allocs/op exceeds baseline %d (+%.0f%% allowed)",
				name, got.AllocsOp, g.AllocsOp, base.Tolerance*100))
		}
		if max := withTolerance(g.BOp, base.Tolerance); got.BOp > max {
			errs = append(errs, fmt.Errorf("%s: %d B/op exceeds baseline %d (+%.0f%% allowed)",
				name, got.BOp, g.BOp, base.Tolerance*100))
		}
		if g.TokS > 0 {
			floor := g.TokS * (1 - base.Tolerance)
			if got.TokS < floor {
				errs = append(errs, fmt.Errorf("%s: %.0f tok/s below baseline %.0f (−%.0f%% allowed)",
					name, got.TokS, g.TokS, base.Tolerance*100))
			}
		}
		if g.P99MS > 0 {
			ceiling := g.P99MS * (1 + base.Tolerance)
			if got.P99MS > ceiling {
				errs = append(errs, fmt.Errorf("%s: p99 %.3fms exceeds baseline ceiling %.3fms (+%.0f%% allowed)",
					name, got.P99MS, g.P99MS, base.Tolerance*100))
			}
		}
		if g.TTFTP99MS > 0 {
			ceiling := g.TTFTP99MS * (1 + base.Tolerance)
			if got.TTFTP99MS > ceiling {
				errs = append(errs, fmt.Errorf("%s: ttft p99 %.3fms exceeds baseline ceiling %.3fms (+%.0f%% allowed)",
					name, got.TTFTP99MS, g.TTFTP99MS, base.Tolerance*100))
			}
		}
		if g.WBytes > 0 && got.WBytes > g.WBytes {
			errs = append(errs, fmt.Errorf("%s: %.0f resident weight bytes exceeds baseline ceiling %.0f (no tolerance: packed storage is deterministic)",
				name, got.WBytes, g.WBytes))
		}
	}
	for name, spec := range speedupPairs(&base) {
		par, ok := rep.Benchmarks[spec.Parallel]
		if !ok || par.Procs < 4 {
			continue // speedup criterion is defined on ≥4 cores
		}
		min := spec.Min
		if min <= 0 {
			min = base.MinSpeedup
		}
		if s, ok := rep.Speedups[name]; ok && s < min {
			errs = append(errs, fmt.Errorf("%s: speedup %.2f× below required %.1f× at %d procs",
				name, s, min, par.Procs))
		}
	}
	return errs
}

// withTolerance returns the largest value that still passes the gate,
// rounding up so small-integer baselines (e.g. 1 alloc/op) keep at least
// their own headroom.
func withTolerance(v int64, tol float64) int64 {
	return v + int64(float64(v)*tol+0.5)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
