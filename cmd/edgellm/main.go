// Command edgellm is the CLI for the Edge-LLM reproduction. Subcommands:
//
//	experiments  regenerate the paper's tables/figures and ablations
//	             (-t T1..T3,F1..F7,A1..A7; -quick; -markdown)
//	demo         run the full pipeline end to end on the synthetic task
//	schedule     search hardware schedules for one GEMM shape
//	sensitivity  print the per-layer sensitivity profile of a fresh model
//	train        adapt a model with the Edge-LLM pipeline, save a checkpoint
//	generate     sample from a saved checkpoint with KV-cached decoding
//	decode-bench continuous-batching decode throughput and verification
//	serve        multi-tenant HTTP inference server with admission control,
//	             deadlines, graceful drain, request tracing, SLO burn-rate
//	             tracking, a JSONL access log, and a chaos fault seam
//	fleet        deterministic fleet-scale simulation: heterogeneous virtual
//	             devices adapting under churn, crashes, stalls, and budget
//	             pressure (-devices -churn -fault -seed -json -verify)
//	telemetry    summarise or diff JSONL metric files from -metrics runs;
//	             serve-report analyses a serving access log
//
// Run `edgellm <subcommand> -h` for flags.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	ag "edgellm/internal/autograd"
	"edgellm/internal/core"
	"edgellm/internal/fault"
	"edgellm/internal/govern"
	"edgellm/internal/hwsim"
	"edgellm/internal/nn"
	"edgellm/internal/obsv"
	"edgellm/internal/tensor"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "demo":
		err = cmdDemo(os.Args[2:])
	case "schedule":
		err = cmdSchedule(os.Args[2:])
	case "sensitivity":
		err = cmdSensitivity(os.Args[2:])
	case "train":
		err = cmdTrain(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "decode-bench":
		err = cmdDecodeBench(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "fleet":
		err = cmdFleet(os.Args[2:])
	case "telemetry":
		err = cmdTelemetry(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "edgellm: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgellm: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: edgellm <subcommand> [flags]

subcommands:
  experiments   regenerate paper tables/figures (-t <id>, -quick, -markdown)
  demo          end-to-end pipeline demo on the synthetic task
  schedule      hardware schedule search for one GEMM (-m -n -k -bits -sparsity)
  sensitivity   per-layer compression sensitivity profile
  train         adapt a model with the Edge-LLM pipeline and save a checkpoint
  generate      sample tokens from a saved checkpoint (KV-cached decoding)
  decode-bench  continuous-batching decode throughput + verification (-streams -slots -fault)
  serve         multi-tenant HTTP inference server (admission control, deadlines, drain,
                -fault chaos, -trace timelines, -slo burn rates, -access-log JSONL)
  fleet         deterministic fleet simulation of churning, faulty edge devices
                (-devices -seed -churn -fault -parallel -json -events -verify)
  telemetry     summarise one JSONL metrics file, diff two (A-vs-B regression delta),
                or analyse a serving access log (serve-report [-slo] [-strict])`)
}

func cmdExperiments(args []string) (err error) {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	id := fs.String("t", "", "run only the experiment with this id (T1..T3, F1..F7, A1..A7); ids may also be given as positional arguments")
	quick := fs.Bool("quick", false, "shrink trained experiments for a fast smoke run")
	markdown := fs.Bool("markdown", false, "emit markdown tables")
	parallel := fs.Int("parallel", 1, "max concurrent tasks in the experiment runner (1 = sequential; results are identical at any value)")
	metrics := fs.String("metrics", "", "write JSONL observability events (manifest, spans, metrics, summary) to this file")
	trace := fs.String("trace", "", "write a Chrome trace-event JSON file (open in chrome://tracing or Perfetto) to this path")
	spanlog := fs.Bool("spanlog", false, "print one line per completed timing span to stderr")
	telemetryAddr := fs.String("telemetry-addr", "", "serve live telemetry on this host:port (/metrics Prometheus text, /debug/vars, /debug/pprof); use :0 for an ephemeral port")
	faultSpec := fs.String("fault", "", `inject deterministic faults: comma-separated mode=ID pairs (panic=F5,flaky=T3,fail=A2) or "smoke"`)
	retries := fs.Int("retries", 0, "retry budget per experiment for retryable failures (0 = default, negative disables)")
	pool := fs.String("pool", "on", "tensor arena for the training hot path: on|off (results are byte-identical either way; off is for A/B timing)")
	memBudget := fs.String("mem-budget", "", `hard per-experiment memory budget for the resource governor: bytes with optional KiB/MiB/GiB suffix, or "half-vanilla" for half the analytic vanilla-FT peak`)
	stageTimeout := fs.Duration("stage-timeout", 0, "wall-clock deadline per experiment attempt; a stalled experiment is cancelled and reported as a failed row")
	governMode := fs.String("govern", "on", "resource governor: on|off (off ignores -mem-budget and -stage-timeout)")
	suiteTimeout := fs.Duration("timeout", 0, "whole-suite deadline: in-flight experiments drain, unrun rows are marked skipped, and the command exits non-zero")
	fs.Parse(args)

	switch *pool {
	case "on":
		ag.SetPool(tensor.NewPool())
		defer ag.SetPool(nil)
	case "off":
	default:
		return fmt.Errorf("edgellm: -pool must be on or off, got %q", *pool)
	}

	var gov *govern.Governor
	switch *governMode {
	case "off":
	case "on":
		budget, err := parseMemBudget(*memBudget)
		if err != nil {
			return err
		}
		if budget > 0 || *stageTimeout > 0 {
			gov = govern.New(govern.Budget{MemoryBytes: budget, StageTimeout: *stageTimeout})
			fmt.Fprintf(os.Stderr, "edgellm: resource governor: mem budget %s, stage timeout %s\n",
				fmtB(budget), *stageTimeout)
		}
	default:
		return fmt.Errorf("edgellm: -govern must be on or off, got %q", *governMode)
	}

	oc := obsvConfig{
		MetricsPath: *metrics, TracePath: *trace, SpanLog: *spanlog,
		TelemetryAddr: *telemetryAddr, Parallel: *parallel, Quick: *quick,
		Pool: *pool,
	}
	if gov != nil {
		oc.Govern = "on"
		oc.MemBudgetBytes = gov.Budget.MemoryBytes
		oc.StageTimeoutMS = float64(gov.Budget.StageTimeout) / float64(time.Millisecond)
	}
	finish, err := setupObsv(oc)
	if err != nil {
		return err
	}
	// Telemetry failures (a full disk truncating the JSONL or trace file)
	// must not be dropped: the run's own error wins, but a clean run still
	// exits non-zero when its telemetry was lost.
	defer func() {
		if ferr := finish(); ferr != nil {
			fmt.Fprintf(os.Stderr, "edgellm: telemetry error: %v\n", ferr)
			if err == nil {
				err = ferr
			}
		}
	}()

	sizes := core.DefaultSizes()
	if *quick {
		sizes = core.QuickSizes()
	}
	var only []string
	if *id != "" {
		only = []string{strings.ToUpper(*id)}
	}
	for _, a := range fs.Args() {
		only = append(only, strings.ToUpper(a))
	}

	opts := core.SuiteOpts{
		Sizes: sizes, Parallel: *parallel, Only: only, MaxRetries: *retries,
	}
	if *faultSpec != "" {
		inj, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "edgellm: injecting faults: %s\n", inj.Describe())
		opts.Inject = inj.Hook
	}

	opts.Govern = gov

	// Ctrl-C / SIGTERM cancels the suite; in-flight grid points finish, no
	// new ones start, and RunAll returns context.Canceled.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *suiteTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *suiteTimeout)
		defer cancel()
	}

	start := time.Now()
	reports, runErr := core.RunAll(ctx, opts)
	// A cancelled suite (deadline, Ctrl-C) still returns the partial
	// reports: completed rows are real results, unrun rows are marked
	// skipped. Print what there is, then exit non-zero.
	for _, r := range reports {
		if *markdown {
			fmt.Println(r.Markdown())
		} else {
			fmt.Println(r.String())
		}
	}
	if gov != nil {
		if rec := obsv.Global(); rec != nil {
			rec.EmitGovern(gov.Record())
		}
		printGovernSummary(gov)
	}
	if runErr != nil {
		if len(reports) > 0 {
			return fmt.Errorf("suite stopped early (%d rows reported): %w", len(reports), runErr)
		}
		return runErr
	}
	if failed := failedReports(reports); len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "edgellm: %d of %d experiments failed:\n", len(failed), len(reports))
		for _, r := range failed {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", r.ID, firstErrLine(r.Err))
		}
		return fmt.Errorf("%d of %d experiments failed", len(failed), len(reports))
	}
	if len(only) == 0 {
		fmt.Printf("all experiments regenerated in %s\n", time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// parseMemBudget parses the -mem-budget flag: plain bytes, a KiB/MiB/GiB
// suffix, or the keyword "half-vanilla" (half the analytic vanilla
// full-fine-tuning peak of the default configuration — the paper's
// reference point for a constrained edge device).
func parseMemBudget(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	if s == "half-vanilla" {
		return core.VanillaPeakBytes(core.DefaultConfig()) / 2, nil
	}
	mult := int64(1)
	for _, suf := range []struct {
		name string
		mult int64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10}} {
		if strings.HasSuffix(s, suf.name) {
			s, mult = strings.TrimSuffix(s, suf.name), suf.mult
			break
		}
	}
	val, err := strconv.ParseFloat(s, 64)
	if err != nil || val < 0 {
		return 0, fmt.Errorf(`edgellm: bad -mem-budget %q (want bytes, a KiB/MiB/GiB value, or "half-vanilla")`, s)
	}
	return int64(val * float64(mult)), nil
}

// printGovernSummary reports what the governor did on stderr: every ladder
// decision, unmet budgets, and the live-pool cross-check.
func printGovernSummary(gov *govern.Governor) {
	rec := gov.Record()
	if len(rec.Decisions) == 0 && len(rec.UnmetTasks) == 0 {
		fmt.Fprintln(os.Stderr, "edgellm: governor: no degradation needed")
		return
	}
	fmt.Fprintf(os.Stderr, "edgellm: governor: %d degradation decisions under %s budget\n",
		len(rec.Decisions), fmtB(rec.BudgetBytes))
	for _, d := range rec.Decisions {
		fmt.Fprintf(os.Stderr, "  %s %s [%s] %s: %s → %s\n",
			d.Task, d.Trigger, d.Rung, d.Detail, fmtB(d.BeforeBytes), fmtB(d.AfterBytes))
	}
	for _, t := range rec.UnmetTasks {
		fmt.Fprintf(os.Stderr, "  %s: ladder floor still exceeds budget (proceeded at floor)\n", t)
	}
	if rec.LivePeakBytes > 0 {
		fmt.Fprintf(os.Stderr, "  live pool peak: %s (%d overshoots)\n", fmtB(rec.LivePeakBytes), rec.LiveOvershoots)
	}
}

// failedReports selects the degraded reports of a suite run.
func failedReports(reports []*core.Report) []*core.Report {
	var failed []*core.Report
	for _, r := range reports {
		if r.Failed() {
			failed = append(failed, r)
		}
	}
	return failed
}

// firstErrLine keeps the per-experiment failure summary one line per
// experiment even when the error carries a panic stack.
func firstErrLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// obsvConfig selects which telemetry sinks cmdExperiments turns on.
type obsvConfig struct {
	MetricsPath   string // JSONL event stream
	TracePath     string // Chrome trace-event JSON
	SpanLog       bool   // human span lines on stderr
	TelemetryAddr string // live /metrics + /debug/pprof endpoint
	Parallel      int
	Quick         bool
	Pool          string // tensor arena state ("on"/"off"), recorded in the manifest

	// Resource-governor settings mirrored into the manifest so a metrics
	// file is self-describing about whether its run was governed.
	Govern         string
	MemBudgetBytes int64
	StageTimeoutMS float64
}

func (c obsvConfig) enabled() bool {
	return c.MetricsPath != "" || c.TracePath != "" || c.SpanLog || c.TelemetryAddr != ""
}

// setupObsv installs a global obsv recorder when any telemetry flag asks
// for one and returns the teardown. The teardown emits the final summary,
// uninstalls the recorder, closes every sink, and returns the first error
// any sink retained (truncated JSONL, failed trace write, ...), so the
// caller can exit non-zero instead of silently dropping telemetry. With no
// telemetry flag set it returns a no-op teardown and observability stays
// off.
func setupObsv(c obsvConfig) (func() error, error) {
	if !c.enabled() {
		return func() error { return nil }, nil
	}
	rec := obsv.New()
	var metricsFile, traceFile *os.File
	var emitter *obsv.Emitter
	var tw *obsv.TraceWriter
	var server *obsv.Server
	closeAll := func() {
		if metricsFile != nil {
			metricsFile.Close()
		}
		if traceFile != nil {
			traceFile.Close()
		}
		if server != nil {
			server.Close()
		}
	}
	if c.MetricsPath != "" {
		f, err := os.Create(c.MetricsPath)
		if err != nil {
			return nil, fmt.Errorf("create metrics file: %w", err)
		}
		metricsFile = f
		emitter = obsv.NewEmitter(f)
		rec.SetEmitter(emitter)
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("create trace file: %w", err)
		}
		traceFile = f
		tw = obsv.NewTraceWriter(f)
		rec.SetTraceWriter(tw)
	}
	if c.SpanLog {
		rec.SetTrace(os.Stderr)
	}
	if c.TelemetryAddr != "" {
		srv, err := obsv.StartServer(c.TelemetryAddr, rec)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("start telemetry server: %w", err)
		}
		server = srv
		fmt.Fprintf(os.Stderr, "edgellm: telemetry listening on http://%s (/metrics, /debug/vars, /debug/pprof)\n", srv.Addr())
	}
	cfg := core.DefaultConfig()
	man := obsv.NewManifest("edgellm experiments", cfg.Seed, struct {
		Config   core.Config
		Quick    bool
		Parallel int
		Pool     string
	}{cfg, c.Quick, c.Parallel, c.Pool})
	man.Parallel = c.Parallel
	man.Pool = c.Pool
	man.Govern = c.Govern
	man.MemBudgetBytes = c.MemBudgetBytes
	man.StageTimeoutMS = c.StageTimeoutMS
	rec.EmitManifest(man)
	obsv.SetGlobal(rec)
	return func() error {
		rec.EmitSummary()
		obsv.SetGlobal(nil)
		var errs []error
		if tw != nil {
			if err := tw.Close(); err != nil {
				errs = append(errs, fmt.Errorf("trace writer: %w", err))
			}
		}
		if emitter != nil {
			if err := emitter.Err(); err != nil {
				errs = append(errs, fmt.Errorf("metrics emitter: %w", err))
			}
		}
		if metricsFile != nil {
			if err := metricsFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("metrics file: %w", err))
			}
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("trace file: %w", err))
			}
		}
		if server != nil {
			server.Close()
		}
		return errors.Join(errs...)
	}, nil
}

// oneExperiment regenerates a single report through the registry-backed
// runner (sequentially); unknown ids surface as an error.
func oneExperiment(id string, quick bool) (*core.Report, error) {
	sizes := core.DefaultSizes()
	if quick {
		sizes = core.QuickSizes()
	}
	reports, err := core.RunAll(context.Background(), core.SuiteOpts{
		Sizes: sizes, Parallel: 1, Only: []string{id},
	})
	if err != nil {
		return nil, err
	}
	return reports[0], nil
}

func cmdDemo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	iters := fs.Int("iters", 300, "tuning iterations")
	fs.Parse(args)

	cfg := core.DefaultConfig()
	task := core.NewTask(42, cfg.Model.Vocab)
	fmt.Println("pretraining base model on the source domain...")
	task.EnsureBase(context.Background(), cfg, 600)
	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	task.ApplyBase(p.Model)

	fmt.Printf("model: %d layers, dim %d, vocab %d\n", cfg.Model.Layers, cfg.Model.Dim, cfg.Model.Vocab)
	before := p.EvalPerplexity(task.Eval, 8)
	fmt.Printf("held-out perplexity before adaptation: %.3f\n", before)

	calib, _ := task.Train.SequentialBatches(cfg.Batch, cfg.Seq, 2)
	var flat [][]int
	for _, b := range calib {
		flat = append(flat, b...)
	}
	if err := p.Compress(flat); err != nil {
		return err
	}
	fmt.Printf("LUC policy (budget %.1f bits): %s\n", cfg.BudgetBits, p.Policy.Describe(p.Candidates()))
	fmt.Printf("achieved average effective bits: %.2f\n", p.Info.AvgEffectiveBits)

	start := time.Now()
	losses := p.Tune(task.Train, *iters)
	fmt.Printf("adaptive tuning: %d iterations in %s (loss %.3f → %.3f)\n",
		*iters, time.Since(start).Round(time.Millisecond), losses[0], losses[len(losses)-1])

	cb, ct := task.EvalTail(cfg.Batch, cfg.Seq, 4)
	p.FinishTuning(cb, ct)
	after := p.EvalPerplexity(task.Eval, 8)
	fmt.Printf("held-out perplexity after adaptation (voted): %.3f\n", after)

	mem := p.Memory()
	fmt.Printf("per-iteration memory: weights %s, activations %s, grads %s, opt %s (total %s)\n",
		fmtB(mem.Weights), fmtB(mem.Activations), fmtB(mem.Grads), fmtB(mem.OptState), fmtB(mem.Total()))

	iter := p.IterationCost(hwsim.NewSearchedScheduler())
	fmt.Printf("simulated edge-GPU iteration latency: %.2f ms (%.1f%% util)\n",
		iter.TotalSec*1e3, iter.Utilization(cfg.Device)*100)
	return nil
}

func fmtB(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func cmdSchedule(args []string) error {
	fs := flag.NewFlagSet("schedule", flag.ExitOnError)
	m := fs.Int("m", 1024, "GEMM M (rows)")
	n := fs.Int("n", 2048, "GEMM N (output channels)")
	k := fs.Int("k", 2048, "GEMM K (input channels)")
	bits := fs.Int("bits", 4, "weight bit-width")
	sparsity := fs.Float64("sparsity", 0.5, "weight sparsity")
	fs.Parse(args)

	dev := hwsim.EdgeGPU()
	g := hwsim.GEMM{M: *m, N: *n, K: *k, WeightBits: *bits, WeightSparsity: *sparsity}
	st := hwsim.AnalyzeSpace(dev, g)
	naive := hwsim.NaiveSchedule().Cost(dev, g)
	fmt.Printf("GEMM %dx%dx%d, %d-bit weights @ %.0f%% sparsity on %s\n",
		*m, *n, *k, *bits, *sparsity*100, dev.Name)
	fmt.Printf("schedule space: %d fitting schedules\n", st.Count)
	fmt.Printf("naive   : %.3f ms\n", naive.TotalSec*1e3)
	fmt.Printf("median  : %.3f ms\n", st.MedianSec*1e3)
	fmt.Printf("best    : %.3f ms  (%s, %.1f%% util, %.2fx over naive)\n",
		st.BestSec*1e3, st.BestSchedule, st.BestUtil*100, naive.TotalSec/st.BestSec)
	_, sa := hwsim.SearchAnnealed(dev, g, 1, 2000)
	fmt.Printf("annealed: %.3f ms  (%.2fx of exhaustive best)\n", sa.TotalSec*1e3, sa.TotalSec/st.BestSec)
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	iters := fs.Int("iters", 400, "adaptive tuning iterations")
	pretrain := fs.Int("pretrain", 600, "base pretraining iterations")
	out := fs.String("o", "model.ckpt", "checkpoint output path")
	seed := fs.Int64("seed", 42, "experiment seed")
	fs.Parse(args)

	cfg := core.DefaultConfig()
	cfg.Seed = *seed
	task := core.NewTask(*seed, cfg.Model.Vocab)
	fmt.Printf("pretraining base (%d iters)...\n", *pretrain)
	task.EnsureBase(context.Background(), cfg, *pretrain)

	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	task.ApplyBase(p.Model)
	calib, _ := task.Pretrain.SequentialBatches(cfg.Batch, cfg.Seq, 2)
	var flat [][]int
	for _, b := range calib {
		flat = append(flat, b...)
	}
	if err := p.Compress(flat); err != nil {
		return err
	}
	fmt.Printf("compressed: %s\n", p.Policy.Describe(p.Candidates()))
	losses := p.Tune(task.Train, *iters)
	fmt.Printf("tuned %d iterations: loss %.3f → %.3f\n", *iters, losses[0], losses[len(losses)-1])
	cb, ct := task.EvalTail(cfg.Batch, cfg.Seq, 4)
	p.FinishTuning(cb, ct)
	fmt.Printf("target-domain perplexity: %.3f\n", p.EvalPerplexity(task.Eval, 8))

	if err := p.Model.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("checkpoint written to %s\n", *out)
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	ckpt := fs.String("ckpt", "model.ckpt", "checkpoint path")
	promptStr := fs.String("prompt", "1,2,3", "comma-separated prompt token ids")
	n := fs.Int("n", 24, "tokens to generate")
	temp := fs.Float64("temp", 0.8, "sampling temperature (0 = greedy)")
	topK := fs.Int("topk", 0, "top-k filter (0 = off)")
	seed := fs.Int64("seed", 1, "sampling seed")
	fs.Parse(args)

	m, err := nn.LoadFile(*ckpt)
	if err != nil {
		return err
	}
	var prompt []int
	for _, part := range strings.Split(*promptStr, ",") {
		var tok int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &tok); err != nil {
			return fmt.Errorf("bad prompt token %q", part)
		}
		prompt = append(prompt, tok)
	}
	dec := nn.NewDecoder(m)
	out, err := dec.Generate(prompt, nn.SampleConfig{
		Temperature: *temp, TopK: *topK, MaxTokens: *n, Seed: *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("prompt:      %v\n", prompt)
	fmt.Printf("continuation: %v\n", out[len(prompt):])
	return nil
}

func cmdSensitivity(args []string) error {
	fs := flag.NewFlagSet("sensitivity", flag.ExitOnError)
	iters := fs.Int("pretrain", 200, "pretraining iterations before probing")
	fs.Parse(args)
	fmt.Println(core.ExperimentF3(context.Background(), *iters).String())
	return nil
}
