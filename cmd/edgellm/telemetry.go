package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"edgellm/internal/core"
	"edgellm/internal/obsv"
)

// cmdTelemetry is the offline half of the telemetry subsystem: it reads
// JSONL metric files produced by `experiments -metrics` and prints either
// a run summary or an A-vs-B regression delta, and it analyses serving
// access logs produced by `serve -access-log`.
//
//	edgellm telemetry run.jsonl                    summary of one run
//	edgellm telemetry a.jsonl b.jsonl              delta table (B relative to A)
//	edgellm telemetry serve-report access.jsonl    serving latency/SLO report
//
// An explicit leading "summary" or "diff" verb is also accepted.
func cmdTelemetry(args []string) error {
	if len(args) > 0 && args[0] == "serve-report" {
		return cmdServeReport(args[1:])
	}
	fs := flag.NewFlagSet("telemetry", flag.ExitOnError)
	markdown := fs.Bool("markdown", false, "emit markdown tables")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage: edgellm telemetry [summary|diff] <run.jsonl> [other.jsonl]
       edgellm telemetry serve-report [-slo spec] [-strict] <access.jsonl>

With one file: print the run's manifest and aggregated metrics.
With two: print a regression delta of the second run against the first.
serve-report: per-tenant latency and SLO attainment from a serving access log.`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	files := fs.Args()
	// Optional verb; it must agree with the number of files.
	verb := ""
	if len(files) > 0 && (files[0] == "summary" || files[0] == "diff") {
		verb = files[0]
		files = files[1:]
	}
	switch {
	case len(files) == 1 && verb != "diff":
		run, err := readRun(files[0])
		if err != nil {
			return err
		}
		printReport(summaryReport(files[0], run), *markdown)
		return nil
	case len(files) == 2 && verb != "summary":
		a, err := readRun(files[0])
		if err != nil {
			return err
		}
		b, err := readRun(files[1])
		if err != nil {
			return err
		}
		printReport(diffReport(files[0], files[1], a, b), *markdown)
		return nil
	default:
		fs.Usage()
		return fmt.Errorf("telemetry: want one file (summary) or two (diff), got verb %q with %d file(s)", verb, len(files))
	}
}

func printReport(r *core.Report, markdown bool) {
	if markdown {
		fmt.Println(r.Markdown())
	} else {
		fmt.Println(r.String())
	}
}

// telemetryRun is one JSONL file reduced to its aggregates.
type telemetryRun struct {
	Manifest *obsv.Manifest
	Summary  obsv.Summary
	Events   int
}

// readRun parses a JSONL metrics file. If the stream contains summary
// events (the normal case — EmitSummary writes one at teardown), the last
// one wins; otherwise the span/metric events are replayed into a fresh
// Recorder so even a truncated stream (crashed run) still summarises.
func readRun(path string) (telemetryRun, error) {
	f, err := os.Open(path)
	if err != nil {
		return telemetryRun{}, err
	}
	defer f.Close()

	run := telemetryRun{}
	rec := obsv.New()
	var fromEvents bool
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var ev obsv.Event
		if err := json.Unmarshal([]byte(text), &ev); err != nil {
			return telemetryRun{}, fmt.Errorf("%s:%d: invalid JSONL event: %w", path, line, err)
		}
		run.Events++
		switch ev.Kind {
		case obsv.KindManifest:
			run.Manifest = ev.Manifest
		case obsv.KindSummary:
			if ev.Summary != nil {
				run.Summary = *ev.Summary
			}
		case obsv.KindSpan:
			rec.ObserveSpan(ev.Name, ev.DurMS, eventLabels(ev)...)
			fromEvents = true
		case obsv.KindMetric:
			rec.Observe(ev.Name, ev.Value, eventLabels(ev)...)
			fromEvents = true
		}
	}
	if err := sc.Err(); err != nil {
		return telemetryRun{}, fmt.Errorf("%s: %w", path, err)
	}
	if run.Events == 0 {
		return telemetryRun{}, fmt.Errorf("%s: no telemetry events", path)
	}
	if len(run.Summary.Counters)+len(run.Summary.Dists)+len(run.Summary.Spans) == 0 && fromEvents {
		run.Summary = rec.Snapshot()
	}
	return run, nil
}

func eventLabels(ev obsv.Event) []obsv.Label {
	if len(ev.Labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(ev.Labels))
	for k := range ev.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]obsv.Label, len(keys))
	for i, k := range keys {
		out[i] = obsv.L(k, ev.Labels[k])
	}
	return out
}

// summaryReport renders one run's aggregates as a report table.
func summaryReport(path string, run telemetryRun) *core.Report {
	r := &core.Report{
		ID:     "TELEMETRY",
		Title:  "Run summary: " + path,
		Header: []string{"Metric", "Kind", "Count", "Value / mean", "p50", "p95", "p99"},
	}
	if m := run.Manifest; m != nil {
		r.Notes = fmt.Sprintf("tool %q, seed %d, go %s, config %s, started %s",
			m.Tool, m.Seed, m.GoVersion, m.ConfigHash, m.Start.Format("2006-01-02T15:04:05Z07:00"))
	}
	for _, key := range sortedKeys(run.Summary.Counters) {
		r.AddRow(key, "counter", fmt.Sprintf("%d", run.Summary.Counters[key]), "", "", "", "")
	}
	for _, key := range sortedKeys(run.Summary.Gauges) {
		r.AddRow(key, "gauge", "", fmtVal(run.Summary.Gauges[key]), "", "", "")
	}
	for _, key := range sortedKeys(run.Summary.Dists) {
		d := run.Summary.Dists[key]
		r.AddRow(key, "dist", fmt.Sprintf("%d", d.Count), fmtVal(d.Mean()),
			fmtVal(d.P50), fmtVal(d.P95), fmtVal(d.P99))
	}
	for _, key := range sortedKeys(run.Summary.Spans) {
		s := run.Summary.Spans[key]
		mean := 0.0
		if s.Count > 0 {
			mean = s.TotalMS / float64(s.Count)
		}
		r.AddRow(key, "span ms", fmt.Sprintf("%d", s.Count), fmtVal(mean),
			fmtVal(s.P50MS), fmtVal(s.P95MS), fmtVal(s.P99MS))
	}
	return r
}

// diffReport renders run B against baseline A: every counter delta and
// every shared dist/span mean with its relative change. Step latency,
// gradient norms, and suite.* failure counters are exactly the series this
// surfaces for regression hunting.
func diffReport(pathA, pathB string, a, b telemetryRun) *core.Report {
	r := &core.Report{
		ID:     "TELEMETRY-DIFF",
		Title:  fmt.Sprintf("Telemetry delta: %s → %s", pathA, pathB),
		Header: []string{"Metric", "Kind", "A", "B", "Δ", "Δ%"},
		Notes:  "Δ% is B relative to A; counters compare totals, dists and spans compare means",
	}
	for _, key := range unionKeys(a.Summary.Counters, b.Summary.Counters) {
		av, bv := float64(a.Summary.Counters[key]), float64(b.Summary.Counters[key])
		addDelta(r, key, "counter", av, bv)
	}
	for _, key := range unionKeys(a.Summary.Gauges, b.Summary.Gauges) {
		addDelta(r, key, "gauge", a.Summary.Gauges[key], b.Summary.Gauges[key])
	}
	for _, key := range unionKeys(a.Summary.Dists, b.Summary.Dists) {
		addDelta(r, key, "dist mean", a.Summary.Dists[key].Mean(), b.Summary.Dists[key].Mean())
	}
	for _, key := range unionKeys(a.Summary.Spans, b.Summary.Spans) {
		sa, sb := a.Summary.Spans[key], b.Summary.Spans[key]
		addDelta(r, key, "span mean ms", spanMean(sa), spanMean(sb))
	}
	return r
}

func spanMean(s obsv.SpanStat) float64 {
	if s.Count == 0 {
		return 0
	}
	return s.TotalMS / float64(s.Count)
}

func addDelta(r *core.Report, key, kind string, a, b float64) {
	delta := b - a
	rel := "n/a"
	if a != 0 {
		rel = fmt.Sprintf("%+.1f%%", 100*delta/a)
	}
	r.AddRow(key, kind, fmtVal(a), fmtVal(b), fmtSigned(delta), rel)
}

func fmtVal(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

func fmtSigned(v float64) string {
	if v == 0 {
		return "0"
	}
	if math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3 {
		return fmt.Sprintf("%+.3g", v)
	}
	return fmt.Sprintf("%+.3f", v)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func unionKeys[V any](a, b map[string]V) []string {
	set := make(map[string]bool, len(a)+len(b))
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	return sortedKeys(set)
}
