package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	ag "edgellm/internal/autograd"
	"edgellm/internal/fleet"
	"edgellm/internal/obsv"
	"edgellm/internal/tensor"
)

// cmdFleet simulates a fleet of heterogeneous virtual edge devices running
// Edge-LLM adaptation under churn and injected chaos, and prints the fleet
// report. The report is byte-identical for identical -devices/-seed/-churn/
// -fault/-steps/-epoch flags at any -parallel and any GOMAXPROCS; SIGTERM
// drains the fleet gracefully and the command proves the shared tensor
// arena released every pooled byte before exiting.
func cmdFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	devices := fs.Int("devices", 64, "fleet size")
	seed := fs.Int64("seed", 42, "fleet seed; derives every per-device stream (spec, training, faults, churn)")
	steps := fs.Int("steps", 24, "adaptation-step budget per device")
	epoch := fs.Int("epoch", 8, "snapshot + pool-trim + re-admission cadence, in steps")
	churn := fs.Float64("churn", 0, "probability in [0,1] that a device leaves mid-run and rejoins after a virtual gap")
	faultRate := fs.Float64("fault", 0, "chaos intensity in [0,1]: each device plans ~3*rate composed crash/stall/transient/cancel faults")
	parallel := fs.Int("parallel", 0, "device worker pool (0 = GOMAXPROCS; the report is identical at any value)")
	stallTimeout := fs.Duration("stall-timeout", 2*time.Second, "real-time watchdog bound for killing an injected stall (virtual cost is fixed regardless)")
	jsonOut := fs.Bool("json", false, "print the report as indented JSON instead of text")
	events := fs.Bool("events", false, "retain the merged virtual-time event timeline in the report")
	verifyN := fs.Int("verify", 0, "re-run up to N chaos-surviving devices solo and verify bit-identical weights+loss")
	metricsPath := fs.String("metrics", "", "stream telemetry events (fleet.* counters + fleet summary record) as JSONL to this file")
	fs.Parse(args)

	// The shared arena is what the drain proof is about: every device
	// allocates its tapes from it, and a fully drained fleet must hand every
	// byte back.
	ag.SetPool(tensor.NewPool())
	defer ag.SetPool(nil)

	rec := obsv.New()
	obsv.SetGlobal(rec)
	defer obsv.SetGlobal(nil)
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("fleet: create metrics file: %w", err)
		}
		defer f.Close()
		rec.SetEmitter(obsv.NewEmitter(f))
		fmt.Fprintf(os.Stderr, "fleet: streaming telemetry events to %s\n", *metricsPath)
	}

	cfg := fleet.Config{
		Devices:      *devices,
		Seed:         *seed,
		Steps:        *steps,
		EpochSteps:   *epoch,
		Churn:        *churn,
		FaultRate:    *faultRate,
		Parallel:     *parallel,
		StallTimeout: *stallTimeout,
		KeepEvents:   *events,
	}

	// Ctrl-C / SIGTERM drains: every device stops at its next step boundary,
	// completed devices keep their results, and the partial report is printed.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	start := time.Now()
	rep, runErr := fleet.Run(ctx, cfg)
	wall := time.Since(start).Round(time.Millisecond)
	rec.EmitFleet(rep.FleetRecord())
	rec.EmitSummary()

	if *jsonOut {
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("fleet: marshal report: %w", err)
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(rep.String())
	}
	fmt.Fprintf(os.Stderr, "fleet: simulated %d devices in %s wall time\n", rep.Devices, wall)

	// Drain proof: whether the run completed or was drained mid-flight,
	// every pooled byte must be back in the arena's free lists.
	if leaked := fleet.PoolInUseBytes(); leaked != 0 {
		return fmt.Errorf("fleet: drain proof failed: pool still holds %s after all devices stopped", fmtB(leaked))
	}
	fmt.Fprintln(os.Stderr, "fleet: drain proof: pool holds 0 B after run")

	if runErr != nil {
		// A graceful drain with no leaked bytes is a successful outcome; the
		// report above says how far the fleet got.
		fmt.Fprintf(os.Stderr, "fleet: drained early (%v): %d converged, %d drained, %d failed\n",
			runErr, rep.Converged, rep.Drained, rep.Failed)
		return nil
	}

	if *verifyN > 0 {
		if err := verifyChaosInvariance(ctx, cfg, rep, *verifyN); err != nil {
			return err
		}
	}
	if rep.Failed > 0 {
		return fmt.Errorf("fleet: %d of %d devices failed", rep.Failed, rep.Devices)
	}
	return nil
}

// verifyChaosInvariance re-runs up to n chaos-surviving devices with their
// fault schedules and churn stripped, and checks the solo runs reproduce
// the chaos runs' fingerprints and losses bit-exactly.
func verifyChaosInvariance(ctx context.Context, cfg fleet.Config, rep *fleet.Report, n int) error {
	specs := fleet.Specs(cfg)
	checked := 0
	for _, r := range rep.DeviceResults {
		if checked >= n {
			break
		}
		if !r.Converged || r.Crashes+r.StallsKilled+r.Retries+r.Cancels+r.Leaves == 0 {
			continue
		}
		solo := fleet.RunDevice(ctx, cfg, specs[r.Index].Solo())
		if !solo.Converged {
			return fmt.Errorf("fleet: verify %s: solo run did not converge: %s", r.ID, solo.Err)
		}
		if solo.Fingerprint != r.Fingerprint || solo.FinalLoss != r.FinalLoss {
			return fmt.Errorf("fleet: verify %s: chaos run (crashes %d, stalls %d, retries %d, cancels %d, leaves %d) "+
				"diverged from solo: fingerprint %s vs %s, loss %v vs %v",
				r.ID, r.Crashes, r.StallsKilled, r.Retries, r.Cancels, r.Leaves,
				r.Fingerprint, solo.Fingerprint, r.FinalLoss, solo.FinalLoss)
		}
		checked++
		fmt.Fprintf(os.Stderr, "fleet: verify %s: solo run matches chaos run (fingerprint %s, crashes %d, stalls %d, leaves %d)\n",
			r.ID, r.Fingerprint, r.Crashes, r.StallsKilled, r.Leaves)
	}
	if checked == 0 {
		fmt.Fprintln(os.Stderr, "fleet: verify: no chaos-surviving devices to check (raise -fault or -churn)")
		return nil
	}
	fmt.Fprintf(os.Stderr, "fleet: verify: %d chaos survivors bit-identical to their solo runs\n", checked)
	return nil
}
