package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgellm/internal/fault"
	"edgellm/internal/govern"
	"edgellm/internal/nn"
	"edgellm/internal/obsv"
	"edgellm/internal/serve"
	"edgellm/internal/tensor"
)

// cmdServe runs the hardened multi-tenant HTTP inference server: bounded
// admission with 429 load shedding, per-tenant caps, analytic KV-memory
// admission, per-request deadlines, a per-stream stall watchdog, an
// adapter registry with CRC integrity checking, and graceful SIGTERM drain
// that verifies the KV arena empties before exit. -fault threads
// deterministic chaos through the serving path for the CI soak.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address (use :0 for an ephemeral port)")
	ckpt := fs.String("ckpt", "", "model checkpoint to serve (empty: fresh seeded model from the -dim/-layers/... flags)")
	dim := fs.Int("dim", 64, "fresh-model embedding dimension")
	layers := fs.Int("layers", 2, "fresh-model transformer layers")
	heads := fs.Int("heads", 4, "fresh-model attention heads")
	hidden := fs.Int("hidden", 128, "fresh-model MLP hidden dimension")
	vocab := fs.Int("vocab", 256, "fresh-model vocabulary size")
	maxSeq := fs.Int("maxseq", 128, "fresh-model maximum sequence length")
	seed := fs.Int64("seed", 42, "fresh-model init seed")
	slots := fs.Int("slots", 4, "decoder slot capacity (concurrent streams per step)")
	queue := fs.Int("queue", 8, "bounded wait queue beyond the slots; overflow sheds with 429")
	tenantSlots := fs.Int("tenant-slots", 0, "per-tenant in-flight request cap (0 = unlimited)")
	deadline := fs.Duration("deadline", 30*time.Second, "default per-request deadline (header X-Edgellm-Deadline-Ms overrides; 0 = none)")
	stallTimeout := fs.Duration("stall-timeout", 10*time.Second, "kill streams whose token production stops for this long (0 = off)")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "grace for in-flight streams on SIGTERM before cancellation")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
	memBudget := fs.String("mem-budget", "", "KV-memory admission budget: bytes with optional KiB/MiB/GiB suffix (empty = no memory admission)")
	adapters := fs.String("adapters", "", "adapter registry directory (empty = base model only)")
	maxAdapters := fs.Int("max-adapters", 8, "LRU bound on resident adapters")
	bitsSpec := fs.String("bits", "", `pack block weights and serve through the fused kernels: "2".."8", "nf4", or "luc@<avg-bits>"; packed serving is base-model-only (incompatible with -adapters)`)
	faultSpec := fs.String("fault", "", `chaos seam: comma-separated mode=ID pairs over request ids, modes fail|panic|cancel|stall (e.g. "panic=R3,cancel=R7")`)
	telemetryAddr := fs.String("telemetry-addr", "", "serve live telemetry on this host:port (/metrics, /debug/vars, /debug/pprof)")
	accessLogPath := fs.String("access-log", "", "append one JSONL record per request to this file (analysable offline with `edgellm telemetry serve-report`)")
	sloSpec := fs.String("slo", "", `SLO objectives, comma-separated (e.g. "p99_ttft_ms=500,availability=0.999"); burn rates surface on /statusz, /metrics, and serve.slo_* — reported, never enforced`)
	sloInterval := fs.Duration("slo-interval", 5*time.Second, "SLO burn-rate sampling interval")
	tracePath := fs.String("trace", "", "write request span timelines as Chrome trace-event JSON to this file (open in chrome://tracing or Perfetto)")
	metricsPath := fs.String("metrics", "", "stream telemetry events as JSONL to this file")
	fs.Parse(args)

	var m *nn.Model
	if *ckpt != "" {
		var err error
		if m, err = nn.LoadFile(*ckpt); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: loaded checkpoint %s\n", *ckpt)
	} else {
		cfg := nn.Config{
			Vocab: *vocab, Dim: *dim, Heads: *heads, Layers: *layers,
			Hidden: *hidden, MaxSeq: *maxSeq,
		}
		if err := cfg.Validate(); err != nil {
			return err
		}
		m = nn.NewModel(cfg, tensor.NewRNG(*seed))
		fmt.Fprintf(os.Stderr, "serve: fresh model dim=%d layers=%d heads=%d hidden=%d vocab=%d maxseq=%d seed=%d\n",
			*dim, *layers, *heads, *hidden, *vocab, *maxSeq, *seed)
	}

	// Packed serving: adapters patch float32 weights in place, which packed
	// layers no longer have, so the two flags are mutually exclusive.
	var pm *nn.PackedModel
	if *bitsSpec != "" {
		if *adapters != "" {
			return fmt.Errorf("serve: -bits is incompatible with -adapters: packed serving is base-model-only")
		}
		specs, desc, err := resolvePackSpecs(m, *bitsSpec)
		if err != nil {
			return err
		}
		wpool := tensor.NewPool()
		nn.AdoptWeights(m, wpool)
		if pm, err = nn.PackModel(m, specs, wpool); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "serve: packed weights (%s): %s float32 released → %s resident\n",
			desc, fmtB(pm.ReleasedBytes()), fmtB(pm.StorageBytes()))
	}

	rec := obsv.New()
	obsv.SetGlobal(rec)
	defer obsv.SetGlobal(nil)
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return fmt.Errorf("serve: create metrics file: %w", err)
		}
		defer f.Close()
		rec.SetEmitter(obsv.NewEmitter(f))
		fmt.Fprintf(os.Stderr, "serve: streaming telemetry events to %s\n", *metricsPath)
	}
	var traceW *obsv.TraceWriter
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("serve: create trace file: %w", err)
		}
		defer f.Close()
		traceW = obsv.NewTraceWriter(f)
		rec.SetTraceWriter(traceW)
		fmt.Fprintf(os.Stderr, "serve: writing request timelines to %s (Chrome trace format)\n", *tracePath)
	}
	if *telemetryAddr != "" {
		srv, err := obsv.StartServer(*telemetryAddr, rec)
		if err != nil {
			return fmt.Errorf("serve: start telemetry server: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serve: telemetry on http://%s\n", srv.Addr())
	}

	cfg := serve.ServerConfig{
		MaxQueue:        *queue,
		TenantSlots:     *tenantSlots,
		DefaultDeadline: *deadline,
		StallTimeout:    *stallTimeout,
		DrainTimeout:    *drainTimeout,
		RetryAfter:      *retryAfter,
	}
	if *memBudget != "" {
		bytes, err := parseMemBudget(*memBudget)
		if err != nil {
			return err
		}
		cfg.Budget = govern.Budget{MemoryBytes: bytes}
		fmt.Fprintf(os.Stderr, "serve: KV admission budget %s\n", fmtB(bytes))
	}
	if *adapters != "" {
		cfg.Registry = serve.NewRegistry(*adapters, *maxAdapters)
		fmt.Fprintf(os.Stderr, "serve: adapter registry %s (max %d resident)\n", *adapters, *maxAdapters)
	}
	if *faultSpec != "" {
		inj, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			return err
		}
		cfg.Injector = inj
		fmt.Fprintf(os.Stderr, "serve: injecting faults: %s\n", inj.Describe())
	}
	var accessLog *serve.AccessLog
	if *accessLogPath != "" {
		f, err := os.OpenFile(*accessLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("serve: open access log: %w", err)
		}
		accessLog = serve.NewAccessLog(f)
		cfg.AccessLog = accessLog
		fmt.Fprintf(os.Stderr, "serve: access log %s\n", *accessLogPath)
	}
	var slo *obsv.SLOTracker
	if *sloSpec != "" {
		objs, err := obsv.ParseSLOSpec(*sloSpec)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		slo = obsv.NewSLOTracker(rec, objs, obsv.DefaultSLOWindows)
		cfg.SLO = slo
		slo.Start(*sloInterval)
		for _, o := range objs {
			fmt.Fprintf(os.Stderr, "serve: tracking SLO %s\n", o.Name)
		}
	}

	pool := tensor.NewPool()
	dec := nn.NewBatchDecoder(m, *slots, pool)
	defer dec.Close()
	if pm != nil {
		if err := dec.SetPacked(pm); err != nil {
			return fmt.Errorf("serve: SetPacked: %w", err)
		}
	}
	srv := serve.NewServer(dec, cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	fmt.Fprintf(os.Stderr, "serve: listening on http://%s (%d slots + %d queue)\n",
		ln.Addr(), *slots, *queue)

	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	select {
	case err := <-errCh:
		return fmt.Errorf("serve: http server: %w", err)
	case <-ctx.Done():
	}
	stopSignals()

	fmt.Fprintf(os.Stderr, "serve: draining (up to %s for in-flight streams)\n", *drainTimeout)
	drainErr := srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutCtx)
	slo.Stop() // final burn-rate sample; nil-safe
	if accessLog != nil {
		if err := accessLog.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: access log error: %v\n", err)
		}
	}
	if traceW != nil {
		if err := traceW.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "serve: trace writer error: %v\n", err)
		}
	}
	if drainErr != nil {
		return fmt.Errorf("serve: drain: %w", drainErr)
	}
	fmt.Fprintf(os.Stderr, "serve: drained cleanly: arena active bytes 0, %d requests served, %d shed, %d stalled\n",
		rec.CounterTotal("serve.requests"), rec.CounterTotal("serve.shed"),
		rec.CounterTotal("serve.stalled"))
	return nil
}
