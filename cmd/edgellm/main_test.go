package main

import (
	"strings"
	"testing"

	"edgellm/internal/core"
)

func TestFmtB(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
	}
	for _, c := range cases {
		if got := fmtB(c.n); got != c.want {
			t.Errorf("fmtB(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestOneExperimentUnknownID(t *testing.T) {
	if _, err := oneExperiment("T9", true); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

// TestCmdExperimentsFaultSmoke drives the real CLI path with injected
// faults: a panicking experiment must degrade to an error-annotated row and
// make the command return a failure-summary error, while healthy
// experiments still complete.
func TestCmdExperimentsFaultSmoke(t *testing.T) {
	err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "panic=F1"})
	if err == nil {
		t.Fatal("cmdExperiments must report the injected failure")
	}
	if !strings.Contains(err.Error(), "1 of 1 experiments failed") {
		t.Fatalf("err = %v, want failure summary", err)
	}
}

// TestCmdExperimentsFaultRecovers: a flaky (first-attempt-only) fault is
// retried and the command succeeds.
func TestCmdExperimentsFaultRecovers(t *testing.T) {
	if err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "flaky=F1"}); err != nil {
		t.Fatalf("retry did not recover the flaky experiment: %v", err)
	}
}

func TestCmdExperimentsBadFaultSpec(t *testing.T) {
	if err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "nonsense"}); err == nil {
		t.Fatal("bad -fault spec must error")
	}
}

func TestFirstErrLine(t *testing.T) {
	if got := firstErrLine("boom\nstack"); got != "boom" {
		t.Fatalf("firstErrLine = %q", got)
	}
	if got := firstErrLine("single"); got != "single" {
		t.Fatalf("firstErrLine = %q", got)
	}
}

func TestOneExperimentAnalyticIDs(t *testing.T) {
	// The purely analytic experiments are cheap enough to run in a test;
	// each must produce a non-empty report with the right id.
	for _, id := range []string{"T3", "F1", "F4", "F5", "F6", "F7", "A2", "A5", "A6"} {
		r, err := oneExperiment(id, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id || len(r.Rows) == 0 {
			t.Fatalf("%s: bad report (id %q, %d rows)", id, r.ID, len(r.Rows))
		}
		if !strings.Contains(r.String(), id+":") {
			t.Fatalf("%s: rendering lacks the id header", id)
		}
	}
}

func TestParseMemBudget(t *testing.T) {
	half := core.VanillaPeakBytes(core.DefaultConfig()) / 2
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"1048576", 1 << 20, true},
		{"4KiB", 4 << 10, true},
		{"1.5MiB", 3 << 19, true},
		{"2GiB", 2 << 30, true},
		{"half-vanilla", half, true},
		{"nonsense", 0, false},
		{"-5", 0, false},
		{"12XiB", 0, false},
	}
	for _, c := range cases {
		got, err := parseMemBudget(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("parseMemBudget(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("parseMemBudget(%q) accepted, want error", c.in)
		}
	}
}

// TestCmdExperimentsStageTimeoutKillsStall: the CLI path of the stall
// watchdog — an injected stall is cancelled at the stage deadline and the
// command exits non-zero with the row reported as failed.
func TestCmdExperimentsStageTimeoutKillsStall(t *testing.T) {
	err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "stall=F1", "-stage-timeout", "300ms"})
	if err == nil {
		t.Fatal("a stalled-and-killed row must fail the command")
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Fatalf("error %q does not report the failed row", err)
	}
}

// TestCmdExperimentsSuiteTimeout: the whole-suite deadline produces a
// partial report and a non-zero exit.
func TestCmdExperimentsSuiteTimeout(t *testing.T) {
	err := cmdExperiments([]string{"-quick", "-t", "T3", "-fault", "stall=T3", "-timeout", "300ms"})
	if err == nil {
		t.Fatal("suite timeout must exit non-zero")
	}
	if !strings.Contains(err.Error(), "suite stopped early") {
		t.Fatalf("error %q does not mark the early stop", err)
	}
}

// TestCmdExperimentsGovernedAnalytic: a governed run of an analytic
// experiment completes under a tight budget (nothing to degrade, nothing
// to kill).
func TestCmdExperimentsGovernedAnalytic(t *testing.T) {
	if err := cmdExperiments([]string{"-quick", "-t", "F4", "-mem-budget", "half-vanilla", "-stage-timeout", "60s"}); err != nil {
		t.Fatalf("governed analytic run failed: %v", err)
	}
}
