package main

import (
	"strings"
	"testing"
)

func TestFmtB(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
	}
	for _, c := range cases {
		if got := fmtB(c.n); got != c.want {
			t.Errorf("fmtB(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestOneExperimentUnknownID(t *testing.T) {
	if _, err := oneExperiment("T9", true); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

func TestOneExperimentAnalyticIDs(t *testing.T) {
	// The purely analytic experiments are cheap enough to run in a test;
	// each must produce a non-empty report with the right id.
	for _, id := range []string{"T3", "F1", "F4", "F5", "F6", "F7", "A2", "A5", "A6"} {
		r, err := oneExperiment(id, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id || len(r.Rows) == 0 {
			t.Fatalf("%s: bad report (id %q, %d rows)", id, r.ID, len(r.Rows))
		}
		if !strings.Contains(r.String(), id+":") {
			t.Fatalf("%s: rendering lacks the id header", id)
		}
	}
}
