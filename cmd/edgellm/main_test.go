package main

import (
	"strings"
	"testing"
)

func TestFmtB(t *testing.T) {
	cases := []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.00 KiB"},
		{3 << 20, "3.00 MiB"},
	}
	for _, c := range cases {
		if got := fmtB(c.n); got != c.want {
			t.Errorf("fmtB(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestOneExperimentUnknownID(t *testing.T) {
	if _, err := oneExperiment("T9", true); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

// TestCmdExperimentsFaultSmoke drives the real CLI path with injected
// faults: a panicking experiment must degrade to an error-annotated row and
// make the command return a failure-summary error, while healthy
// experiments still complete.
func TestCmdExperimentsFaultSmoke(t *testing.T) {
	err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "panic=F1"})
	if err == nil {
		t.Fatal("cmdExperiments must report the injected failure")
	}
	if !strings.Contains(err.Error(), "1 of 1 experiments failed") {
		t.Fatalf("err = %v, want failure summary", err)
	}
}

// TestCmdExperimentsFaultRecovers: a flaky (first-attempt-only) fault is
// retried and the command succeeds.
func TestCmdExperimentsFaultRecovers(t *testing.T) {
	if err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "flaky=F1"}); err != nil {
		t.Fatalf("retry did not recover the flaky experiment: %v", err)
	}
}

func TestCmdExperimentsBadFaultSpec(t *testing.T) {
	if err := cmdExperiments([]string{"-quick", "-t", "F1", "-fault", "nonsense"}); err == nil {
		t.Fatal("bad -fault spec must error")
	}
}

func TestFirstErrLine(t *testing.T) {
	if got := firstErrLine("boom\nstack"); got != "boom" {
		t.Fatalf("firstErrLine = %q", got)
	}
	if got := firstErrLine("single"); got != "single" {
		t.Fatalf("firstErrLine = %q", got)
	}
}

func TestOneExperimentAnalyticIDs(t *testing.T) {
	// The purely analytic experiments are cheap enough to run in a test;
	// each must produce a non-empty report with the right id.
	for _, id := range []string{"T3", "F1", "F4", "F5", "F6", "F7", "A2", "A5", "A6"} {
		r, err := oneExperiment(id, true)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id || len(r.Rows) == 0 {
			t.Fatalf("%s: bad report (id %q, %d rows)", id, r.ID, len(r.Rows))
		}
		if !strings.Contains(r.String(), id+":") {
			t.Fatalf("%s: rendering lacks the id header", id)
		}
	}
}
