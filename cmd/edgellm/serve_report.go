package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"edgellm/internal/core"
	"edgellm/internal/obsv"
	"edgellm/internal/serve"
)

// cmdServeReport analyses a serving access log (`serve -access-log`): it
// replays the JSONL records into a fresh recorder and prints a per-tenant
// latency report plus, with -slo, offline SLO attainment against the same
// objective grammar the live tracker uses. -strict turns data-quality
// problems (malformed lines, duplicate request IDs) into a non-zero exit,
// which is how CI validates a chaos soak's log.
func cmdServeReport(args []string) error {
	fs := flag.NewFlagSet("telemetry serve-report", flag.ExitOnError)
	markdown := fs.Bool("markdown", false, "emit markdown tables")
	sloSpec := fs.String("slo", "", `offline SLO attainment, same grammar as serve -slo (e.g. "p99_ttft_ms=500,availability=0.999")`)
	strict := fs.Bool("strict", false, "fail on malformed lines or duplicate request IDs instead of warning")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: edgellm telemetry serve-report [-slo spec] [-strict] [-markdown] <access.jsonl>")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("serve-report: want exactly one access log, got %d args", fs.NArg())
	}
	path := fs.Arg(0)

	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, readErr := serve.ReadAccessLog(f)
	if readErr != nil {
		var mal *serve.MalformedRecordError
		if !errors.As(readErr, &mal) || *strict {
			return fmt.Errorf("serve-report: %s: %w", path, readErr)
		}
		fmt.Fprintf(os.Stderr, "serve-report: warning: %v (keeping %d parsed records)\n", readErr, len(recs))
	}
	if len(recs) == 0 {
		return fmt.Errorf("serve-report: %s: no records", path)
	}

	// Duplicate request IDs break per-request reconstruction; in a healthy
	// soak every record is unique.
	seen := make(map[string]int, len(recs))
	dups := 0
	for _, r := range recs {
		if r.ID == "" {
			continue
		}
		if seen[r.ID]++; seen[r.ID] == 2 {
			dups++
			if *strict {
				return fmt.Errorf("serve-report: %s: duplicate request id %q", path, r.ID)
			}
		}
	}
	if dups > 0 {
		fmt.Fprintf(os.Stderr, "serve-report: warning: %d duplicate request id(s)\n", dups)
	}

	// Replay into a fresh recorder so the log-histogram quantile machinery
	// (and the SLO counting) is exactly what the live server runs.
	rec := obsv.New()
	events := map[string]int64{}
	codes := map[string]int64{}
	for _, r := range recs {
		tenant := r.Tenant
		if tenant == "" {
			tenant = "default"
		}
		lt := obsv.L("tenant", tenant)
		rec.Add("serve.requests", 1, lt)
		rec.Observe("serve.request_ms", r.TotalMS, lt)
		if r.Code != "ok" {
			rec.Add("serve.errors", 1, lt)
		}
		if r.QueueMS > 0 {
			rec.Observe("serve.queue_wait_ms", r.QueueMS, lt)
		}
		if r.TTFTMS > 0 {
			rec.Observe("serve.ttft_ms", r.TTFTMS, lt)
		}
		if r.ITLMeanMS > 0 {
			rec.Observe("serve.itl_ms", r.ITLMeanMS, lt)
		}
		rec.Add("serve.tokens", int64(r.Tokens), lt)
		codes[r.Code]++
		for _, ev := range r.Events {
			events[ev]++
		}
	}

	rep := &core.Report{
		ID:     "SERVE-REPORT",
		Title:  "Serving report: " + path,
		Header: []string{"Metric", "Count", "Mean", "p50", "p95", "p99"},
		Notes: fmt.Sprintf("%d requests, %d unique ids, %d duplicate(s); quantiles from the same log-histogram the live /metrics endpoint serves",
			len(recs), len(seen), dups),
	}
	for _, code := range sortedKeys(codes) {
		rep.AddRow("verdict "+code, fmt.Sprintf("%d", codes[code]), "", "", "", "")
	}
	for _, ev := range sortedKeys(events) {
		rep.AddRow("event "+ev, fmt.Sprintf("%d", events[ev]), "", "", "", "")
	}
	snap := rec.Snapshot()
	for _, key := range sortedKeys(snap.Dists) {
		d := snap.Dists[key]
		rep.AddRow(key, fmt.Sprintf("%d", d.Count), fmtVal(d.Mean()),
			fmtVal(d.P50), fmtVal(d.P95), fmtVal(d.P99))
	}
	printReport(rep, *markdown)

	if *sloSpec != "" {
		objs, err := obsv.ParseSLOSpec(*sloSpec)
		if err != nil {
			return fmt.Errorf("serve-report: %w", err)
		}
		srep := &core.Report{
			ID:     "SERVE-SLO",
			Title:  "SLO attainment (whole log)",
			Header: []string{"Objective", "Target", "Attained", "Bad", "Total", "Budget used", "Verdict"},
			Notes:  "attainment over the full log; the live tracker reports windowed burn rates of the same objectives",
		}
		violated := 0
		for _, o := range objs {
			var bad, total int64
			var target float64
			switch o.Kind {
			case obsv.SLOLatency:
				bad, total = rec.DistCountsAbove(o.Dist, o.Threshold)
				target = o.Quantile
			case obsv.SLOAvailability:
				bad = rec.CounterTotal(o.BadCounter)
				total = rec.CounterTotal(o.TotalCounter)
				target = o.Target
			}
			attained, used := 1.0, 0.0
			if total > 0 {
				attained = 1 - float64(bad)/float64(total)
				if o.Budget > 0 {
					used = (float64(bad) / float64(total)) / o.Budget
				}
			}
			verdict := "ok"
			if attained < target {
				verdict = "VIOLATED"
				violated++
			}
			srep.AddRow(o.Name, fmt.Sprintf("%.4g", target), fmt.Sprintf("%.4g", attained),
				fmt.Sprintf("%d", bad), fmt.Sprintf("%d", total), fmt.Sprintf("%.0f%%", 100*used), verdict)
		}
		printReport(srep, *markdown)
		if violated > 0 && *strict {
			return fmt.Errorf("serve-report: %d SLO objective(s) violated", violated)
		}
	}
	return nil
}
