package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edgellm/internal/obsv"
)

// writeRunJSONL produces a small but realistic metrics file via the real
// Emitter, so the telemetry reader is tested against the actual wire format.
func writeRunJSONL(t *testing.T, name string, stepMS float64, failures int64, withSummary bool) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := obsv.New()
	rec.SetEmitter(obsv.NewEmitter(f))
	rec.EmitManifest(obsv.Manifest{Tool: "edgellm-test", Seed: 42, GoVersion: "go-test"})
	for i := 0; i < 10; i++ {
		rec.Observe("train.step_ms", stepMS)
		rec.Observe("adapt.block_grad_norm", 0.5, obsv.L("layer", "0"))
	}
	rec.Add("suite.failures", failures)
	rec.Add("train.steps", 10)
	rec.SetGauge("luc.avg_effective_bits", 4.5)
	sp := rec.StartSpan("pipeline.tune", obsv.L("experiment", "T1"))
	sp.End()
	if withSummary {
		rec.EmitSummary()
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTelemetrySummary(t *testing.T) {
	path := writeRunJSONL(t, "run.jsonl", 12.5, 2, true)
	run, err := readRun(path)
	if err != nil {
		t.Fatal(err)
	}
	if run.Manifest == nil || run.Manifest.Tool != "edgellm-test" {
		t.Fatalf("manifest not parsed: %+v", run.Manifest)
	}
	if got := run.Summary.Counters["suite.failures"]; got != 2 {
		t.Fatalf("suite.failures = %d, want 2", got)
	}
	out := summaryReport(path, run).String()
	for _, want := range []string{
		"train.step_ms", "suite.failures", "adapt.block_grad_norm{layer=0}",
		"luc.avg_effective_bits", "pipeline.tune{experiment=T1}", "seed 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestTelemetryReplayWithoutSummary(t *testing.T) {
	// A crashed run never writes its summary event; the reader must
	// rebuild aggregates from the raw metric/span events.
	path := writeRunJSONL(t, "crashed.jsonl", 9.0, 0, false)
	run, err := readRun(path)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := run.Summary.Dists["train.step_ms"]
	if !ok || d.Count != 10 {
		t.Fatalf("replayed dist = %+v, ok=%v; want count 10", d, ok)
	}
	if s, ok := run.Summary.Spans["pipeline.tune{experiment=T1}"]; !ok || s.Count != 1 {
		t.Fatalf("replayed span = %+v, ok=%v; want count 1", s, ok)
	}
}

func TestTelemetryDiff(t *testing.T) {
	a := writeRunJSONL(t, "a.jsonl", 10.0, 1, true)
	b := writeRunJSONL(t, "b.jsonl", 20.0, 3, true)
	ra, err := readRun(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := readRun(b)
	if err != nil {
		t.Fatal(err)
	}
	rep := diffReport(a, b, ra, rb)
	if len(rep.Rows) == 0 {
		t.Fatal("diff report is empty")
	}
	out := rep.String()
	if !strings.Contains(out, "suite.failures") || !strings.Contains(out, "+200.0%") {
		t.Errorf("diff missing suite.failures +200%% row:\n%s", out)
	}
	if !strings.Contains(out, "train.step_ms") || !strings.Contains(out, "+100.0%") {
		t.Errorf("diff missing train.step_ms +100%% row:\n%s", out)
	}
}

func TestCmdTelemetryEndToEnd(t *testing.T) {
	a := writeRunJSONL(t, "a.jsonl", 10.0, 1, true)
	b := writeRunJSONL(t, "b.jsonl", 20.0, 3, true)
	if err := cmdTelemetry([]string{"summary", a}); err != nil {
		t.Fatalf("summary: %v", err)
	}
	if err := cmdTelemetry([]string{"diff", a, b}); err != nil {
		t.Fatalf("diff: %v", err)
	}
	if err := cmdTelemetry([]string{a, b}); err != nil {
		t.Fatalf("implicit diff: %v", err)
	}
	if err := cmdTelemetry([]string{"-markdown", a}); err != nil {
		t.Fatalf("markdown summary: %v", err)
	}
	if err := cmdTelemetry([]string{"summary", a, b}); err == nil {
		t.Fatal("summary with two files should error")
	}
	if err := cmdTelemetry([]string{filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestReadRunRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"kind\":\"metric\"}\nnot json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRun(path); err == nil || !strings.Contains(err.Error(), "bad.jsonl:2") {
		t.Fatalf("want line-numbered parse error, got %v", err)
	}
	empty := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readRun(empty); err == nil {
		t.Fatal("empty file should error")
	}
}
