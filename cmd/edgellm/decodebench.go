package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"edgellm/internal/fault"
	"edgellm/internal/nn"
	"edgellm/internal/obsv"
	"edgellm/internal/serve"
	"edgellm/internal/tensor"
)

// cmdDecodeBench exercises the continuous-batching decode path end to end:
// it builds a fresh model, pushes a workload of concurrent generation
// streams through the serve scheduler, and reports throughput plus arena
// accounting. With -verify (the default) every surviving stream is checked
// token-for-token against a solo single-sequence decode — the
// batching-is-invisible contract — and the command fails if the KV arena
// does not drain back to zero bytes. -fault cancels chosen streams
// mid-generation through the fault injector, which is how CI's decode-smoke
// job proves cancelled slots are reclaimed without disturbing survivors.
func cmdDecodeBench(args []string) error {
	fs := flag.NewFlagSet("decode-bench", flag.ExitOnError)
	slots := fs.Int("slots", 8, "decoder slot capacity (concurrent sequences per step)")
	streams := fs.Int("streams", 16, "generation requests to submit (excess queues FIFO)")
	tokens := fs.Int("tokens", 32, "continuation tokens per stream")
	promptLen := fs.Int("prompt-len", 4, "prompt tokens per stream")
	dim := fs.Int("dim", 256, "model embedding dimension")
	layers := fs.Int("layers", 4, "transformer layers")
	heads := fs.Int("heads", 8, "attention heads")
	hidden := fs.Int("hidden", 768, "MLP hidden dimension")
	vocab := fs.Int("vocab", 2048, "vocabulary size")
	temp := fs.Float64("temp", 0.8, "sampling temperature (0 = greedy)")
	seed := fs.Int64("seed", 42, "model and sampling seed")
	bitsSpec := fs.String("bits", "", `pack block weights and decode through the fused kernels: "2".."8" (uniform width), "nf4" (normal-float codebook), or "luc@<avg-bits>" (per-layer LUC assignment under an average-bit budget, e.g. luc@3.5); empty decodes float32`)
	faultSpec := fs.String("fault", "", `cancel streams mid-generation: comma-separated mode=ID pairs over stream ids S0..S<n-1>, e.g. "fail=S3,fail=S7" (use mode fail)`)
	verify := fs.Bool("verify", true, "check surviving streams token-for-token against solo decodes and require the arena to drain")
	compare := fs.Bool("compare", false, "also run the workload one stream at a time and report the batch speedup")
	jsonOut := fs.Bool("json", false, "emit the summary as one JSON object on stdout")
	fs.Parse(args)

	if *streams < 1 || *slots < 1 || *tokens < 1 || *promptLen < 1 {
		return fmt.Errorf("decode-bench: streams, slots, tokens, prompt-len must all be ≥ 1")
	}
	var inj *fault.Injector
	if *faultSpec != "" {
		var err error
		if inj, err = fault.ParseSpec(*faultSpec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "decode-bench: injecting faults: %s\n", inj.Describe())
	}

	cfg := nn.Config{
		Vocab: *vocab, Dim: *dim, Heads: *heads, Layers: *layers,
		Hidden: *hidden, MaxSeq: *promptLen + *tokens,
	}
	m := nn.NewModel(cfg, tensor.NewRNG(*seed))

	// With -bits, the float32 block weights are adopted into a dedicated
	// weight pool, packed, and released: the packed representation becomes
	// the only resident copy, and the pool's live-byte drop is the
	// measurable memory win the bit budget promised.
	var pm *nn.PackedModel
	var packDesc string
	var weightPoolDrop int64
	if *bitsSpec != "" {
		wpool := tensor.NewPool()
		adopted := nn.AdoptWeights(m, wpool)
		specs, desc, err := resolvePackSpecs(m, *bitsSpec)
		if err != nil {
			return err
		}
		before := wpool.Stats().BytesInUse
		if pm, err = nn.PackModel(m, specs, wpool); err != nil {
			return err
		}
		weightPoolDrop = before - wpool.Stats().BytesInUse
		if weightPoolDrop != pm.ReleasedBytes() {
			return fmt.Errorf("decode-bench: weight pool dropped %d bytes but PackModel released %d",
				weightPoolDrop, pm.ReleasedBytes())
		}
		packDesc = desc
		fmt.Fprintf(os.Stderr, "decode-bench: packed %s: %s float32 → %s resident (pool drop %s of %s adopted)\n",
			pm.Describe(), fmtB(pm.ReleasedBytes()), fmtB(pm.StorageBytes()), fmtB(weightPoolDrop), fmtB(adopted))
	}

	reqs := make([]serve.Request, *streams)
	for i := range reqs {
		prompt := make([]int, *promptLen)
		for j := range prompt {
			prompt[j] = (i*7 + j*13 + 1) % cfg.Vocab
		}
		reqs[i] = serve.Request{
			ID:     fmt.Sprintf("S%d", i),
			Prompt: prompt,
			Cfg: nn.SampleConfig{
				Temperature: *temp, TopK: 40, MaxTokens: *tokens, Seed: *seed + int64(i),
			},
		}
	}

	run, err := runDecodeWorkload(m, pm, reqs, *slots, *tokens/2, inj)
	if err != nil {
		return err
	}

	verified := 0
	if *verify {
		if run.arenaActiveAfter != 0 || run.activeSlotsAfter != 0 {
			return fmt.Errorf("decode-bench: arena did not drain: %d slots / %d bytes still active",
				run.activeSlotsAfter, run.arenaActiveAfter)
		}
		for i, res := range run.results {
			if res.Err != nil {
				continue // cancelled by injection; survivors are what must match
			}
			soloDec := nn.NewDecoder(m)
			if pm != nil {
				if err := soloDec.SetPacked(pm); err != nil {
					return fmt.Errorf("decode-bench: solo packed decoder: %w", err)
				}
			}
			solo, err := soloDec.Generate(reqs[i].Prompt, reqs[i].Cfg)
			soloDec.Close()
			if err != nil {
				return fmt.Errorf("decode-bench: solo reference for %s: %w", res.ID, err)
			}
			if !intsEqual(res.Tokens, solo) {
				return fmt.Errorf("decode-bench: stream %s diverged from solo decode:\n  batched: %v\n  solo:    %v",
					res.ID, res.Tokens, solo)
			}
			verified++
		}
	}

	var speedup float64
	if *compare {
		soloRun, err := runDecodeWorkload(m, pm, reqs, 1, *tokens/2, inj)
		if err != nil {
			return err
		}
		if run.wall > 0 {
			speedup = float64(soloRun.wall) / float64(run.wall)
		}
	}

	tokPerSec := float64(run.tokensFed) / run.wall.Seconds()
	if *jsonOut {
		out := map[string]any{
			"streams": *streams, "slots": *slots, "tokens_per_stream": *tokens,
			"prompt_len": *promptLen, "dim": *dim, "layers": *layers,
			"tokens_fed": run.tokensFed, "steps": run.steps,
			"wall_ms":         float64(run.wall) / float64(time.Millisecond),
			"tok_per_sec":     tokPerSec,
			"arena_cap_bytes": run.arenaCap, "arena_active_after": run.arenaActiveAfter,
			"cancelled": run.cancelled, "verified": verified,
		}
		if speedup > 0 {
			out["batch_speedup"] = speedup
		}
		if pm != nil {
			out["packed_spec"] = packDesc
			out["weight_bytes_f32"] = pm.ReleasedBytes()
			out["weight_bytes_packed"] = pm.StorageBytes()
			out["weight_pool_drop_bytes"] = weightPoolDrop
			out["weight_bytes_ratio"] = float64(pm.StorageBytes()) / float64(pm.ReleasedBytes())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	fmt.Printf("decode-bench: model dim=%d layers=%d heads=%d hidden=%d vocab=%d maxseq=%d\n",
		*dim, *layers, *heads, *hidden, *vocab, cfg.MaxSeq)
	fmt.Printf("workload: %d streams × (%d prompt + %d continuation) over %d slots\n",
		*streams, *promptLen, *tokens, *slots)
	fmt.Printf("decoded %d tokens in %d steps over %s (%.1f tok/s)\n",
		run.tokensFed, run.steps, run.wall.Round(time.Millisecond), tokPerSec)
	fmt.Printf("arena: cap %s, active after run %s\n", fmtB(run.arenaCap), fmtB(run.arenaActiveAfter))
	if pm != nil {
		fmt.Printf("packed weights (%s): %s float32 released → %s resident (%.1f%%), pool drop %s\n",
			packDesc, fmtB(pm.ReleasedBytes()), fmtB(pm.StorageBytes()),
			100*float64(pm.StorageBytes())/float64(pm.ReleasedBytes()), fmtB(weightPoolDrop))
	}
	if len(run.cancelled) > 0 {
		fmt.Printf("cancelled mid-stream: %v\n", run.cancelled)
	}
	if *verify {
		fmt.Printf("verified %d/%d surviving streams bitwise against solo decodes; arena drained\n",
			verified, len(run.results)-len(run.cancelled))
	}
	if speedup > 0 {
		fmt.Printf("batch speedup over one-at-a-time: %.2fx\n", speedup)
	}
	return nil
}

// decodeRun captures one workload execution for reporting and verification.
type decodeRun struct {
	wall             time.Duration
	results          []serve.Result
	steps            int64
	tokensFed        int64
	cancelled        []string
	arenaCap         int64
	arenaActiveAfter int64
	activeSlotsAfter int
}

// runDecodeWorkload pushes reqs through a fresh scheduler with the given
// slot capacity. When inj is non-nil, each stream consults it once at its
// halfway token and a returned error cancels the stream — deterministic
// mid-generation churn for the smoke test.
func runDecodeWorkload(m *nn.Model, pm *nn.PackedModel, reqs []serve.Request, slots, halfway int, inj *fault.Injector) (*decodeRun, error) {
	rec := obsv.New()
	obsv.SetGlobal(rec)
	defer obsv.SetGlobal(nil)

	pool := tensor.NewPool()
	dec := nn.NewBatchDecoder(m, slots, pool)
	defer dec.Close()
	if pm != nil {
		if err := dec.SetPacked(pm); err != nil {
			return nil, fmt.Errorf("decode-bench: SetPacked: %w", err)
		}
	}
	sched := serve.New(dec)
	ctx := context.Background()

	run := &decodeRun{arenaCap: dec.ArenaCapBytes()}
	if inj != nil {
		sched.OnSample = func(st *serve.Stream, tok int) {
			if st.Sampled() == halfway {
				if err := inj.Hook(ctx, st.ID(), 0); err != nil {
					st.Cancel()
				}
			}
		}
	}

	streams := make([]*serve.Stream, len(reqs))
	for i, req := range reqs {
		st, err := sched.Submit(req)
		if err != nil {
			return nil, fmt.Errorf("decode-bench: submit %s: %w", req.ID, err)
		}
		streams[i] = st
	}
	start := time.Now()
	if err := sched.Run(ctx); err != nil {
		return nil, err
	}
	run.wall = time.Since(start)

	for _, st := range streams {
		res := st.Result()
		run.results = append(run.results, res)
		if errors.Is(res.Err, serve.ErrCancelled) {
			run.cancelled = append(run.cancelled, res.ID)
		} else if res.Err != nil {
			return nil, fmt.Errorf("decode-bench: stream %s failed: %w", res.ID, res.Err)
		}
	}
	sort.Strings(run.cancelled)

	snap := rec.Snapshot()
	run.tokensFed = snap.Counters["decode.tokens"]
	run.steps = snap.Dists["decode.step_ms"].Count
	run.arenaActiveAfter = dec.ArenaActiveBytes()
	run.activeSlotsAfter = dec.ActiveSlots()
	return run, nil
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
