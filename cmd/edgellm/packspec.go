package main

import (
	"fmt"
	"strconv"
	"strings"

	"edgellm/internal/luc"
	"edgellm/internal/nn"
)

// resolvePackSpecs turns a -bits flag value into per-layer pack specs:
//
//	"2".."8"        uniform width for every layer
//	"nf4"           4-bit normal-float codebook, 64-element blocks
//	"luc@<avg>"     LUC sensitivity probe + DP search under an average-bit
//	                budget, then prune + fake-quantize per the policy so
//	                the packed codes carry the pruned zeros
//
// The returned description names the layer assignment for reports.
func resolvePackSpecs(m *nn.Model, spec string) ([]nn.PackSpec, string, error) {
	layers := len(m.Blocks)
	switch {
	case spec == "nf4":
		out := make([]nn.PackSpec, layers)
		for i := range out {
			out[i] = nn.PackSpec{Bits: 4, NF: true, NFBlock: 64}
		}
		return out, "nf4 uniform", nil
	case strings.HasPrefix(spec, "luc@"):
		budget, err := strconv.ParseFloat(strings.TrimPrefix(spec, "luc@"), 64)
		if err != nil || budget <= 0 {
			return nil, "", fmt.Errorf("bad LUC budget %q: want luc@<avg-bits>, e.g. luc@3.5", spec)
		}
		cands := luc.DefaultCandidates()
		sens := luc.Probe(m, cands, luc.ProbeOptions{Metric: luc.MetricWeightError})
		policy := luc.SearchDP(sens, cands, budget)
		// Apply prunes and fake-quantizes in place so the packed codes are
		// exactly the policy's surviving quantized weights.
		info := luc.Apply(m, policy, cands)
		desc := fmt.Sprintf("luc@%.2f achieved %.2f eff. bits: %s",
			budget, info.AvgEffectiveBits, policy.Describe(cands))
		return luc.PackSpecs(policy, cands), desc, nil
	default:
		bits, err := strconv.Atoi(spec)
		if err != nil || bits < 2 || bits > 8 {
			return nil, "", fmt.Errorf("bad -bits %q: want 2..8, nf4, or luc@<avg-bits>", spec)
		}
		out := make([]nn.PackSpec, layers)
		for i := range out {
			out[i] = nn.PackSpec{Bits: bits}
		}
		return out, fmt.Sprintf("uniform %db", bits), nil
	}
}
