module edgellm

go 1.22
