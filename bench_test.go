// Package edgellm_test holds the benchmark harness that regenerates every
// table and figure of the reproduced evaluation (see DESIGN.md §4 and
// EXPERIMENTS.md). Each benchmark prints the regenerated rows once and
// times the regeneration:
//
//	go test -bench=. -benchmem
//
// Benchmarks named BenchmarkTable*/BenchmarkFigure* map one-to-one onto the
// experiment index; BenchmarkAblation* cover the design choices DESIGN.md
// §5 calls out.
package edgellm_test

import (
	"context"
	"sync"
	"testing"

	"edgellm/internal/core"
	"edgellm/internal/hwsim"
)

// benchOpts keeps the trained benchmarks affordable while preserving every
// qualitative effect; the recorded EXPERIMENTS.md numbers use the full
// sizes via `edgellm experiments`.
var benchOpts = core.RunOpts{Iters: 120, MCQIters: 80, EvalBatches: 6}

// printOnce prints each report a single time even when the benchmark loop
// re-runs the experiment.
var printed sync.Map

func report(b *testing.B, r *core.Report) {
	b.Helper()
	if _, dup := printed.LoadOrStore(r.ID+r.Title, true); !dup {
		b.Logf("\n%s", r.String())
	}
}

func BenchmarkTable1MainComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentT1(context.Background(), benchOpts)
		report(b, r)
	}
}

func BenchmarkTable2LUCAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentT2(context.Background(), benchOpts.Iters, benchOpts.EvalBatches)
		report(b, r)
	}
}

func BenchmarkTable3Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentT3(context.Background())
		report(b, r)
	}
}

func BenchmarkFigure1MemoryBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF1(context.Background())
		report(b, r)
	}
}

func BenchmarkFigure2LayerVoting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF2(context.Background(), benchOpts.Iters, benchOpts.EvalBatches)
		report(b, r)
	}
}

func BenchmarkFigure3Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF3(context.Background(), benchOpts.Iters)
		report(b, r)
	}
}

func BenchmarkFigure4SpeedupVsDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF4(context.Background())
		report(b, r)
	}
}

func BenchmarkFigure5ScheduleSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF5(context.Background())
		report(b, r)
	}
}

func BenchmarkFigure6DeviceSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF6(context.Background())
		report(b, r)
	}
}

func BenchmarkFigure7BatchSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.ExperimentF7(context.Background())
		report(b, r)
	}
}

// --- ablation benches (DESIGN.md §5) ----------------------------------------

func BenchmarkAblationProbeMetric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationProbeMetric(context.Background(), benchOpts.Iters, benchOpts.EvalBatches)
		report(b, r)
	}
}

func BenchmarkAblationPolicySearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationPolicySearch(context.Background())
		report(b, r)
	}
}

func BenchmarkAblationWindowStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationWindowStrategy(context.Background(), benchOpts.Iters, benchOpts.EvalBatches)
		report(b, r)
	}
}

func BenchmarkAblationVotingMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationVotingMode(context.Background(), benchOpts.Iters, benchOpts.EvalBatches)
		report(b, r)
	}
}

func BenchmarkAblationScheduleSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationScheduleSearch(context.Background())
		report(b, r)
	}
}

func BenchmarkAblationFusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationFusion(context.Background())
		report(b, r)
	}
}

func BenchmarkAblationRefine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.AblationRefine(context.Background(), benchOpts.Iters, benchOpts.EvalBatches)
		report(b, r)
	}
}

// --- kernel microbenches: real wall-clock of the hot Go kernels -------------

func BenchmarkKernelScheduleSearchExhaustive(b *testing.B) {
	dev := hwsim.EdgeGPU()
	g := hwsim.GEMM{M: 1024, K: 2048, N: 2048, WeightBits: 4, WeightSparsity: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hwsim.SearchExhaustive(dev, g)
	}
}

func BenchmarkKernelTuningIteration(b *testing.B) {
	cfg := core.DefaultConfig()
	task := core.NewTask(1, cfg.Model.Vocab)
	p, err := core.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	calib, _ := task.Train.SequentialBatches(cfg.Batch, cfg.Seq, 1)
	if err := p.Compress(calib[0]); err != nil {
		b.Fatal(err)
	}
	if err := p.StartTuning(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.TuneStep(task.Train)
	}
}
